"""Typed metric primitives + Prometheus text exposition (stdlib only).

The service's original telemetry was a bag of ad-hoc dicts serialized as
one JSON blob — fine for a single daemon, useless for a fleet scraper.
This module is the generalization underneath
:class:`repro.service.metrics.ServiceMetrics`:

* :class:`Counter` — monotonically increasing, optionally labeled;
* :class:`Gauge` — settable/incrementable point-in-time values, plus
  *callback* gauges read at scrape time (cache occupancy, uptime,
  in-flight requests);
* :class:`Histogram` — fixed-bucket latency distributions, rendered with
  cumulative ``le`` buckets exactly as Prometheus expects (these sit
  *alongside* the bounded ring windows that back the JSON percentiles —
  histograms aggregate across workers, rings don't);
* :class:`MetricsRegistry` — the per-service collection, rendering both
  a JSON snapshot and the Prometheus text exposition format (version
  0.0.4) that ``GET /metrics`` serves under ``Accept: text/plain``.

Recording is thread-safe (one lock per metric; the daemon's handler
threads race into these constantly) and never loses counts — pinned by a
Hypothesis property test.  Scrape-time rendering takes no metric lock
longer than a dict copy.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "relabel_exposition",
    "wants_prometheus",
]

#: The exposition content type ``GET /metrics`` answers with.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Request-latency bucket upper bounds, in seconds.  Sub-millisecond L1
#: hits through multi-second cold whole-graph sweeps.
DEFAULT_LATENCY_BUCKETS_S = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")
    )


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    """Prometheus sample values: integers render bare, floats repr-exact."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value)


def _labels_text(names: tuple[str, ...], values: tuple, extra: str = "") -> str:
    parts = [
        f'{n}="{_escape_label_value(str(v))}"' for n, v in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Metric:
    """Shared labeled-children machinery of every metric type."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...]):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple, object] = {}

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[n]) for n in self.labelnames)

    def items(self) -> list[tuple[tuple, object]]:
        """``(label values, value)`` pairs — a consistent point-in-time copy."""
        with self._lock:
            return list(self._children.items())


class Counter(_Metric):
    """A monotonically increasing count (int-preserving for JSON parity)."""

    kind = "counter"

    def inc(self, amount: int | float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0) + amount

    def value(self, **labels) -> int | float:
        key = self._key(labels)
        with self._lock:
            return self._children.get(key, 0)

    def preset(self, *label_values: str) -> None:
        """Materialize a zero sample so fixed vocabularies always render."""
        key = tuple(str(v) for v in label_values)
        if len(key) != len(self.labelnames):
            raise ValueError(f"{self.name} expects {len(self.labelnames)} labels")
        with self._lock:
            self._children.setdefault(key, 0)

    def _render(self, lines: list[str]) -> None:
        for key, value in sorted(self.items()):
            lines.append(
                f"{self.name}{_labels_text(self.labelnames, key)} "
                f"{_format_value(value)}"
            )


class Gauge(_Metric):
    """A value that goes up and down (in-flight requests, occupancy)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._children[key] = value

    def inc(self, amount: int | float = 1, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0) + amount

    def dec(self, amount: int | float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> int | float:
        key = self._key(labels)
        with self._lock:
            return self._children.get(key, 0)

    def _render(self, lines: list[str]) -> None:
        for key, value in sorted(self.items()):
            lines.append(
                f"{self.name}{_labels_text(self.labelnames, key)} "
                f"{_format_value(value)}"
            )


class _HistogramChild:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets  # per-bucket, cumulated at render
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed upper-bound buckets; ``observe`` is O(log buckets).

    Bucket semantics match Prometheus: an observation lands in the first
    bucket whose upper bound is ``>= value`` (``le`` is inclusive), and
    rendered bucket counts are cumulative with a final ``+Inf``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...],
    ) -> None:
        super().__init__(name, help, labelnames)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        if len(set(buckets)) != len(buckets):
            raise ValueError("buckets must be strictly ascending")
        self.buckets = tuple(float(b) for b in buckets)

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        idx = bisect_left(self.buckets, value)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _HistogramChild(
                    len(self.buckets) + 1  # trailing +Inf bucket
                )
            child.counts[idx] += 1
            child.sum += value
            child.count += 1

    def snapshot_child(self, **labels) -> dict | None:
        """One child's buckets/sum/count (cumulative), or ``None``."""
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                return None
            counts = list(child.counts)
            total_sum, count = child.sum, child.count
        cumulative, running = [], 0
        for c in counts:
            running += c
            cumulative.append(running)
        return {
            "buckets": list(self.buckets),
            "counts": cumulative[:-1],
            "inf": cumulative[-1],
            "sum": total_sum,
            "count": count,
        }

    def _render(self, lines: list[str]) -> None:
        for key, child in sorted(self.items(), key=lambda kv: kv[0]):
            with self._lock:
                counts = list(child.counts)
                total_sum, count = child.sum, child.count
            running = 0
            for bound, c in zip(self.buckets, counts):
                running += c
                le = _labels_text(
                    self.labelnames, key, extra=f'le="{_format_value(bound)}"'
                )
                lines.append(f"{self.name}_bucket{le} {running}")
            running += counts[-1]
            inf = _labels_text(self.labelnames, key, extra='le="+Inf"')
            lines.append(f"{self.name}_bucket{inf} {running}")
            plain = _labels_text(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(total_sum)}")
            lines.append(f"{self.name}_count{plain} {count}")


class _CallbackGauge:
    """A gauge whose value is read at scrape time (no recording path)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, fn) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.fn = fn

    def _render(self, lines: list[str]) -> None:
        try:
            value = self.fn()
        except Exception:  # noqa: BLE001 - a scrape must not 500 the daemon
            return
        if isinstance(value, dict):
            # {(labelnames tuple)?: ...} is overkill here; callbacks return
            # either a scalar or {label-dict-free name suffixes: scalar}.
            for key, v in sorted(value.items()):
                lines.append(
                    f'{self.name}{{item="{_escape_label_value(str(key))}"}} '
                    f"{_format_value(v)}"
                )
        else:
            lines.append(f"{self.name} {_format_value(value)}")


class MetricsRegistry:
    """One service's metrics, renderable as JSON or Prometheus text."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered with a "
                        "different type or label set"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str, labelnames: tuple[str, ...] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str, labelnames: tuple[str, ...] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        *,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=tuple(buckets)
        )

    def gauge_callback(self, name: str, help: str, fn) -> None:
        """Register a scrape-time gauge (idempotent per name)."""
        with self._lock:
            if name not in self._metrics:
                self._metrics[name] = _CallbackGauge(name, help, fn)

    def render(self) -> str:
        """The Prometheus text exposition of every registered metric."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: list[str] = []
        for name, metric in metrics:
            lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            metric._render(lines)
        return "\n".join(lines) + "\n"


def wants_prometheus(accept: str | None) -> bool:
    """Whether an ``Accept`` header asks for the text exposition.

    ``GET /metrics`` defaults to the JSON snapshot (every existing
    consumer); ``text/plain`` or an OpenMetrics type switches to the
    Prometheus format.  ``*/*`` alone stays JSON — browsers and curl send
    it by default and the JSON body is the richer human view.
    """
    if not accept:
        return False
    for part in accept.split(","):
        media = part.split(";", 1)[0].strip().lower()
        if media in ("text/plain", "application/openmetrics-text"):
            return True
    return False


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>\S+))?$"
)


def relabel_exposition(text: str, **labels) -> str:
    """Inject constant labels into every sample of an exposition body.

    The fleet coordinator scrapes each worker's ``/metrics`` text and
    merges them under per-worker labels (``worker="w1"``); comment lines
    are dropped (the coordinator emits its own HELP/TYPE metadata once —
    duplicate HELP lines for one metric are a format violation).
    Unparseable lines are dropped rather than forwarded corrupt.
    """
    extra = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(labels.items())
    )
    out: list[str] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        name, existing, value = (
            match.group("name"),
            match.group("labels"),
            match.group("value"),
        )
        if existing:
            merged = f"{{{extra},{existing[1:-1]}}}" if existing != "{}" else f"{{{extra}}}"
        else:
            merged = f"{{{extra}}}"
        out.append(f"{name}{merged} {value}")
    return "\n".join(out) + ("\n" if out else "")
