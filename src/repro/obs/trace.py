"""Distributed trace spans: contextvar nesting, ``traceparent``, ring buffer.

One ``/v1/optimize_batch`` crosses five tiers and three processes — the
client, the coordinator, and whichever workers its jobs hash onto — and a
p99 regression is unattributable without a record of where each request
actually spent its time.  This module is the span layer every tier hooks
into:

* a :class:`Span` carries ``trace_id``/``span_id``/``parent_id``, a wall
  start timestamp (display only), a *monotonic* duration (so clock jumps
  can never produce negative spans), free-form key-value attributes, and
  point-in-time events (``retry``, ``quarantine``, ``store.hit``, ...);
* nesting is implicit through a :data:`contextvars.ContextVar`, so a span
  opened anywhere below a request handler parents onto that request
  without plumbing arguments through every call;
* crossing a process boundary is explicit: HTTP hops carry a
  W3C-``traceparent``-style header (``00-<trace32>-<span16>-01``), and
  scheduler worker processes receive the serialized parent context and
  ship their finished spans back with their payloads;
* finished spans land in a bounded in-process ring buffer
  (:meth:`Tracer.trace` backs ``GET /v1/trace/<trace_id>``) and — when
  ``REPRO_TRACE_LOG`` names a file — as one structured JSON line per span
  close.

**Zero-cost-when-off is a hard requirement** (the warm path serves L1
hits in microseconds): with tracing disabled, :func:`span` returns a
single shared no-op object, no contextvar is ever set, and
:func:`add_event`/:func:`set_attr` reduce to one ``ContextVar.get``
returning ``None``.  ``benchmarks/test_obs_overhead.py`` pins the warm
path within noise of the uninstrumented baseline.

Tracing is enabled by ``REPRO_TRACE=1`` (daemons inherit it into their
scheduler worker processes) or programmatically via :func:`set_tracing`.
Everything here is stdlib-only and import-light: the engine's hottest
modules import this one, so it must never pull numpy or the service
stack.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from collections import deque

__all__ = [
    "BUFFER_SPANS",
    "TRACE_ENV_VAR",
    "TRACE_LOG_ENV_VAR",
    "TRACEPARENT_HEADER",
    "NullSpan",
    "NullTracer",
    "Span",
    "Tracer",
    "add_event",
    "current_span",
    "current_traceparent",
    "format_traceparent",
    "get_tracer",
    "parse_traceparent",
    "set_tracing",
    "span",
    "tracing_enabled",
]

#: Environment variable enabling tracing ("1"/"true"/... — anything but
#: empty/"0"/"false"/"no"/"off").
TRACE_ENV_VAR = "REPRO_TRACE"

#: Environment variable naming the structured span log file (one JSON
#: line per span close); unset disables the log.
TRACE_LOG_ENV_VAR = "REPRO_TRACE_LOG"

#: The propagation header carried on every traced HTTP hop.
TRACEPARENT_HEADER = "traceparent"

#: Finished spans retained per process (a ring: old traces age out).
BUFFER_SPANS = 8192

#: Sentinel distinguishing "no parent argument" (use the ambient span)
#: from an explicit ``parent=None`` (start a new root).
_AMBIENT = object()

_SPAN_VAR: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_current_span", default=None
)


def _now_unix_us() -> int:
    """Wall-clock microseconds — display/alignment only, never durations."""
    return time.time_ns() // 1000


def format_traceparent(trace_id: str, span_id: str) -> str:
    """The header value for a hop whose parent is ``span_id``."""
    return f"00-{trace_id}-{span_id}-01"


def parse_traceparent(header: str | None) -> tuple[str, str] | None:
    """``(trace_id, parent_span_id)`` from a traceparent header, else None.

    Malformed headers are treated as absent rather than an error: a trace
    context is advisory — it must never fail a request that would
    otherwise succeed.
    """
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if len(version) != 2 or len(trace_id) != 32 or len(span_id) != 16:
        return None
    if len(flags) != 2:
        return None
    try:
        int(version, 16), int(trace_id, 16), int(span_id, 16), int(flags, 16)
    except ValueError:
        return None
    if version == "ff" or int(trace_id, 16) == 0 or int(span_id, 16) == 0:
        return None
    return trace_id, span_id


class Span:
    """One timed operation in a trace; also its own context manager.

    Entering the span makes it the ambient parent for everything below it
    on this thread/task (via contextvar); exiting records the monotonic
    duration and hands the finished record to the owning tracer.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "attrs",
        "events",
        "start_unix_us",
        "dur_us",
        "status",
        "_t0",
        "_token",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        *,
        trace_id: str,
        parent_id: str | None,
        attrs: dict,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = os.urandom(8).hex()
        self.parent_id = parent_id
        self.attrs = attrs
        self.events: list[dict] = []
        self.start_unix_us = _now_unix_us()
        self.dur_us = 0.0
        self.status = "ok"
        self._t0 = time.perf_counter()
        self._token: contextvars.Token | None = None

    # -- recording -----------------------------------------------------------
    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def event(self, name: str, **attrs) -> None:
        """A point-in-time annotation (retry, quarantine, store.hit, ...)."""
        self.events.append(
            {"name": name, "t_us": _now_unix_us(), "attrs": attrs}
        )

    def traceparent(self) -> str:
        """The header value that parents a downstream hop onto this span."""
        return format_traceparent(self.trace_id, self.span_id)

    def to_dict(self) -> dict:
        """The wire/export form (what the ring buffer and log hold)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_us": self.start_unix_us,
            "dur_us": self.dur_us,
            "status": self.status,
            "attrs": dict(self.attrs),
            "events": list(self.events),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "thread": threading.current_thread().name,
        }

    # -- context management --------------------------------------------------
    def __enter__(self) -> "Span":
        self._token = _SPAN_VAR.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.dur_us = (time.perf_counter() - self._t0) * 1e6
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        if self._token is not None:
            _SPAN_VAR.reset(self._token)
            self._token = None
        self._tracer._finish(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Span {self.name!r} trace={self.trace_id[:8]}… "
            f"span={self.span_id}>"
        )


class NullSpan:
    """The shared do-nothing span returned when tracing is off.

    It never touches the contextvar, so with tracing disabled there is no
    ambient span anywhere and :func:`add_event`/:func:`set_attr` stay one
    ``ContextVar.get`` each.
    """

    __slots__ = ()

    trace_id = ""
    span_id = ""
    parent_id = None

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, key: str, value) -> None:
        pass

    def event(self, name: str, **attrs) -> None:
        pass

    def traceparent(self) -> None:
        return None


_NULL_SPAN = NullSpan()


class Tracer:
    """Creates spans and collects the finished ones in a bounded ring.

    One global instance serves the whole process (see :func:`get_tracer`);
    scheduler worker processes build private throwaway instances so their
    spans can be shipped back to the parent with the job result.
    """

    enabled = True

    def __init__(
        self,
        *,
        buffer_spans: int = BUFFER_SPANS,
        log_path: str | None = None,
    ) -> None:
        self._spans: deque[dict] = deque(maxlen=buffer_spans)
        self._lock = threading.Lock()
        self._log_path = log_path
        self._log_fh = None
        self._log_lock = threading.Lock()

    # -- span creation -------------------------------------------------------
    def span(self, name: str, *, parent=_AMBIENT, **attrs) -> Span:
        """Open one span.  ``parent`` may be:

        * omitted — nest under the ambient (contextvar) span, or start a
          root when there is none;
        * ``None`` — force a new root trace;
        * a :class:`Span` — explicit parent (how thread pools re-parent,
          since contextvars don't cross executor threads);
        * a ``traceparent`` header string — the cross-process case.
        """
        if parent is _AMBIENT:
            parent = _SPAN_VAR.get()
        if isinstance(parent, str):
            parsed = parse_traceparent(parent)
            if parsed is None:
                trace_id, parent_id = os.urandom(16).hex(), None
            else:
                trace_id, parent_id = parsed
        elif isinstance(parent, Span):
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = os.urandom(16).hex(), None
        return Span(
            self, name, trace_id=trace_id, parent_id=parent_id, attrs=attrs
        )

    # -- collection ----------------------------------------------------------
    def _finish(self, span: Span) -> None:
        record = span.to_dict()
        with self._lock:
            self._spans.append(record)
        if self._log_path is not None:
            self._log_line(record)

    def _log_line(self, record: dict) -> None:
        with self._log_lock:
            if self._log_fh is None:
                try:
                    self._log_fh = open(  # noqa: SIM115 - held for process life
                        self._log_path, "a", encoding="utf-8"
                    )
                except OSError:
                    self._log_path = None  # bad path: disable, don't crash
                    return
            try:
                self._log_fh.write(
                    json.dumps(record, sort_keys=True, default=str) + "\n"
                )
                self._log_fh.flush()
            except (OSError, ValueError):
                self._log_path = None

    def finished(self) -> list[dict]:
        """Every span currently in the ring, oldest first."""
        with self._lock:
            return list(self._spans)

    def trace(self, trace_id: str) -> list[dict]:
        """All retained spans of one trace, oldest first."""
        with self._lock:
            return [s for s in self._spans if s["trace_id"] == trace_id]

    def ingest(self, records: list[dict]) -> None:
        """Adopt finished spans from elsewhere (worker processes)."""
        cleaned = [
            r
            for r in records
            if isinstance(r, dict) and r.get("trace_id") and r.get("span_id")
        ]
        with self._lock:
            self._spans.extend(cleaned)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


class NullTracer:
    """The no-op tracer a disabled process runs on."""

    enabled = False

    def span(self, name: str, *, parent=_AMBIENT, **attrs) -> NullSpan:
        return _NULL_SPAN

    def finished(self) -> list[dict]:
        return []

    def trace(self, trace_id: str) -> list[dict]:
        return []

    def ingest(self, records: list[dict]) -> None:
        pass

    def clear(self) -> None:
        pass


_NULL_TRACER = NullTracer()
_TRACER: Tracer | NullTracer | None = None
_TRACER_LOCK = threading.Lock()


def _env_enabled() -> bool:
    raw = os.environ.get(TRACE_ENV_VAR, "").strip().lower()
    return bool(raw) and raw not in ("0", "false", "no", "off")


def get_tracer() -> Tracer | NullTracer:
    """The process tracer: resolved from ``REPRO_TRACE`` on first use."""
    tracer = _TRACER
    if tracer is None:
        with _TRACER_LOCK:
            tracer = _TRACER
            if tracer is None:
                tracer = _install(_env_enabled())
    return tracer


def _install(enabled: bool, *, log_path: str | None = None) -> Tracer | NullTracer:
    global _TRACER
    if enabled:
        if log_path is None:
            log_path = os.environ.get(TRACE_LOG_ENV_VAR, "").strip() or None
        _TRACER = Tracer(log_path=log_path)
    else:
        _TRACER = _NULL_TRACER
    return _TRACER


def set_tracing(
    enabled: bool | None, *, log_path: str | None = None
) -> Tracer | NullTracer:
    """Enable/disable tracing for this process.

    ``None`` re-resolves from the environment (how tests restore the
    default).  Returns the installed tracer.
    """
    with _TRACER_LOCK:
        return _install(
            _env_enabled() if enabled is None else enabled, log_path=log_path
        )


def tracing_enabled() -> bool:
    return get_tracer().enabled


# -- ambient-span conveniences (the instrumentation hot path) ----------------

def span(name: str, *, parent=_AMBIENT, **attrs):
    """``get_tracer().span(...)`` — the one-liner instrumentation uses."""
    return get_tracer().span(name, parent=parent, **attrs)


def current_span() -> Span | None:
    return _SPAN_VAR.get()


def current_traceparent() -> str | None:
    """The header value propagating the ambient span, or ``None``."""
    sp = _SPAN_VAR.get()
    return None if sp is None else sp.traceparent()


def add_event(name: str, **attrs) -> None:
    """Annotate the ambient span, if any (no-op when tracing is off)."""
    sp = _SPAN_VAR.get()
    if sp is not None:
        sp.event(name, **attrs)


def set_attr(key: str, value) -> None:
    """Set an attribute on the ambient span, if any."""
    sp = _SPAN_VAR.get()
    if sp is not None:
        sp.attrs[key] = value
