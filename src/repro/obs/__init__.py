"""Observability: distributed trace spans, typed metrics, exporters.

The operational window into the engine/store/fleet stack — see
``repro.obs.trace`` for the span model, ``repro.obs.metrics`` for the
typed registry behind ``GET /metrics``, and ``repro.obs.export`` for
Perfetto/tree exports.  Stdlib-only by design: the engine's hottest
modules import this package.
"""

from repro.obs.export import slowest_spans, to_chrome_trace, trace_tree
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    relabel_exposition,
    wants_prometheus,
)
from repro.obs.trace import (
    BUFFER_SPANS,
    TRACE_ENV_VAR,
    TRACE_LOG_ENV_VAR,
    TRACEPARENT_HEADER,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
    add_event,
    current_span,
    current_traceparent,
    format_traceparent,
    get_tracer,
    parse_traceparent,
    set_attr,
    set_tracing,
    span,
    tracing_enabled,
)

__all__ = [
    "BUFFER_SPANS",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullSpan",
    "NullTracer",
    "PROMETHEUS_CONTENT_TYPE",
    "Span",
    "TRACE_ENV_VAR",
    "TRACE_LOG_ENV_VAR",
    "TRACEPARENT_HEADER",
    "Tracer",
    "add_event",
    "current_span",
    "current_traceparent",
    "format_traceparent",
    "get_tracer",
    "parse_traceparent",
    "relabel_exposition",
    "set_attr",
    "set_tracing",
    "slowest_spans",
    "span",
    "to_chrome_trace",
    "trace_tree",
    "tracing_enabled",
    "wants_prometheus",
]
