"""A stdlib client for the tuning daemon (``urllib``, no dependencies).

Used by the ``repro query`` CLI, the load-test harness and the quickstart
example.  :meth:`TuningClient.sweep_raw` returns the exact response bytes,
which is what the byte-identity acceptance test compares; the convenience
methods parse JSON for human consumers.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.hardware.spec import V100, GPUSpec
from repro.ir.dims import DimEnv
from repro.ir.operator import OpSpec

from .protocol import (
    DEFAULT_OPTIMIZE_CAP,
    DEFAULT_SWEEP_CAP,
    DEFAULT_TOP_K,
    canonical_json_bytes,
    optimize_request_wire,
    sweep_request_wire,
)

__all__ = ["ServiceError", "TuningClient"]


class ServiceError(RuntimeError):
    """A non-2xx response (or no response) from the daemon.

    ``body`` carries the parsed JSON error body when there was one —
    structured rejections (``/v1/register`` validation reports) arrive
    there, not just as a flattened message.
    """

    def __init__(
        self, message: str, *, status: int | None = None, body: dict | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.body = body


class TuningClient:
    """Talk to one tuning daemon at ``base_url``."""

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------------
    def _request(self, path: str, body: dict | None = None) -> bytes:
        url = f"{self.base_url}{path}"
        data = None if body is None else canonical_json_bytes(body)
        req = urllib.request.Request(
            url,
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            detail = ""
            error_body: dict | None = None
            try:
                error_body = json.loads(exc.read())
                detail = error_body.get("error", "")
            except Exception:  # noqa: BLE001 - best-effort error detail
                pass
            raise ServiceError(
                f"{path} failed with HTTP {exc.code}: {detail or exc.reason}",
                status=exc.code,
                body=error_body,
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(f"cannot reach {url}: {exc.reason}") from exc

    def _request_json(self, path: str, body: dict | None = None) -> dict:
        return json.loads(self._request(path, body))

    # -- endpoints -----------------------------------------------------------
    def healthz(self) -> dict:
        return self._request_json("/healthz")

    def metrics(self) -> dict:
        return self._request_json("/metrics")

    def sweep_raw(
        self,
        op: OpSpec,
        env: DimEnv,
        gpu: GPUSpec = V100,
        *,
        cap: int | None = DEFAULT_SWEEP_CAP,
        seed: int = 0x5EED,
        top_k: int = DEFAULT_TOP_K,
    ) -> bytes:
        """The exact ``/v1/sweep`` response bytes (for identity checks)."""
        return self._request(
            "/v1/sweep",
            sweep_request_wire(op, env, gpu, cap=cap, seed=seed, top_k=top_k),
        )

    def sweep(
        self,
        op: OpSpec,
        env: DimEnv,
        gpu: GPUSpec = V100,
        *,
        cap: int | None = DEFAULT_SWEEP_CAP,
        seed: int = 0x5EED,
        top_k: int = DEFAULT_TOP_K,
    ) -> dict:
        """Ranked configurations + predicted times for one operator."""
        return json.loads(self.sweep_raw(op, env, gpu, cap=cap, seed=seed, top_k=top_k))

    def optimize(
        self,
        *,
        model: str = "encoder",
        qkv_fusion: str = "qkv",
        include_backward: bool = True,
        fused: bool = True,
        env: DimEnv | None = None,
        gpu: GPUSpec = V100,
        cap: int | None = DEFAULT_OPTIMIZE_CAP,
        seed: int = 0x5EED,
    ) -> dict:
        """A whole-graph tuned schedule from ``/v1/optimize``."""
        return self._request_json(
            "/v1/optimize",
            optimize_request_wire(
                model=model,
                qkv_fusion=qkv_fusion,
                include_backward=include_backward,
                fused=fused,
                env=env,
                gpu=gpu,
                cap=cap,
                seed=seed,
            ),
        )

    def register(
        self,
        *,
        model: str = "encoder",
        qkv_fusion: str = "qkv",
        include_backward: bool = True,
        fused: bool = True,
        env: DimEnv | None = None,
        gpu: GPUSpec = V100,
        cap: int | None = DEFAULT_OPTIMIZE_CAP,
        seed: int = 0x5EED,
    ) -> dict:
        """Have the daemon tune a model and register the schedule."""
        return self._request_json(
            "/v1/register",
            optimize_request_wire(
                model=model,
                qkv_fusion=qkv_fusion,
                include_backward=include_backward,
                fused=fused,
                env=env,
                gpu=gpu,
                cap=cap,
                seed=seed,
            ),
        )

    def register_entry(self, entry_wire: dict) -> dict:
        """Submit a pre-built schedule entry; the daemon validates first.

        A claim whose recomputed costs disagree with the stored ones is
        rejected with HTTP 400 and a structured ``report`` body (raised
        here as :class:`ServiceError`).
        """
        return self._request_json("/v1/register", {"entry": entry_wire})

    def schedule(self, digest: str) -> dict:
        """Fetch one registered schedule entry by content digest."""
        return self._request_json(f"/v1/schedule/{digest}")

    def wait_until_ready(self, *, timeout: float = 30.0, interval: float = 0.1) -> dict:
        """Poll ``/healthz`` until the daemon answers (or raise)."""
        deadline = time.monotonic() + timeout
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except ServiceError as exc:
                last = exc
                time.sleep(interval)
        raise ServiceError(f"daemon at {self.base_url} not ready after {timeout}s: {last}")
