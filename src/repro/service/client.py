"""A stdlib client for the tuning daemon (``urllib``, no dependencies).

Used by the ``repro query`` CLI, the load-test harness and the quickstart
example.  :meth:`TuningClient.sweep_raw` returns the exact response bytes,
which is what the byte-identity acceptance test compares; the convenience
methods parse JSON for human consumers.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request

from repro.hardware.spec import V100, GPUSpec
from repro.ir.dims import DimEnv
from repro.ir.operator import OpSpec
from repro.obs.trace import TRACEPARENT_HEADER, current_traceparent

from .protocol import (
    BINARY_CONTENT_TYPE,
    DEFAULT_OPTIMIZE_CAP,
    DEFAULT_SWEEP_CAP,
    DEFAULT_TOP_K,
    canonical_json_bytes,
    fleet_heartbeat_wire,
    fleet_register_wire,
    optimize_request_wire,
    payload_from_packed,
    sweep_request_wire,
)

__all__ = ["ServiceError", "TuningClient"]

#: POST paths that are safe to retry on a transient transport failure:
#: sweeps/optimizations are pure functions of the request (content-
#: addressed by design), and fleet register/heartbeat are idempotent
#: lease refreshes.  ``/v1/register`` is deliberately absent — retrying a
#: registration that may have landed double-counts registry lifecycle
#: metrics.  ``/v1/report`` is absent for the same reason: an append that
#: landed before the connection dropped would be double-counted into the
#: calibration corpus by a blind retry.
_IDEMPOTENT_POSTS = frozenset(
    {
        "/v1/sweep",
        "/v1/optimize",
        "/v1/optimize_batch",
        "/v1/fleet/register",
        "/v1/fleet/heartbeat",
    }
)


class ServiceError(RuntimeError):
    """A non-2xx response (or no response) from the daemon.

    ``body`` carries the parsed JSON error body when there was one —
    structured rejections (``/v1/register`` validation reports) arrive
    there, not just as a flattened message.
    """

    def __init__(
        self, message: str, *, status: int | None = None, body: dict | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.body = body


class TuningClient:
    """Talk to one tuning daemon at ``base_url``.

    Transient transport failures (connection refused/reset while a daemon
    restarts, a half-open socket from a crashed peer) are retried with
    capped exponential backoff + jitter — but only for requests that are
    safe to repeat: GETs and the idempotent POSTs in
    :data:`_IDEMPOTENT_POSTS`.  HTTP error *responses* are never retried
    (the daemon answered; repeating won't change its mind), and
    ``retries=0`` disables the loop entirely — the fleet coordinator does
    that, because its retries must move to a different worker instead.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 60.0,
        retries: int = 2,
        backoff_s: float = 0.1,
        backoff_cap_s: float = 2.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s

    # -- transport -----------------------------------------------------------
    def _raw_once(
        self,
        path: str,
        body: dict | None,
        *,
        headers: dict[str, str] | None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One round trip: ``(status, response headers, body bytes)``.

        ``Accept-Encoding: identity`` is always sent explicitly — the
        byte-identity and payload-size checks this client backs are
        meaningless if a transparent proxy re-compresses the body.  A
        ``304 Not Modified`` is a successful revalidation, returned as
        ``(304, headers, b"")`` rather than raised.  Transport-level
        failures (``URLError``/``ConnectionResetError``/timeouts)
        propagate raw for :meth:`_raw` to classify.
        """
        url = f"{self.base_url}{path}"
        data = None if body is None else canonical_json_bytes(body)
        merged = {"Accept-Encoding": "identity"}
        if data is not None:
            merged["Content-Type"] = "application/json"
        # Propagate the ambient trace span, if any: the daemon's server
        # span adopts this header, linking the hop into one trace tree.
        carrier = current_traceparent()
        if carrier is not None:
            merged[TRACEPARENT_HEADER] = carrier
        if headers:
            merged.update(headers)
        req = urllib.request.Request(
            url,
            data=data,
            headers=merged,
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, dict(resp.headers), resp.read()
        except urllib.error.HTTPError as exc:
            if exc.code == 304:
                return 304, dict(exc.headers), b""
            raise self._service_error(path, exc) from exc
        except TimeoutError:
            # Distinguishable from connection failures: a deadline blown
            # mid-read is never retried here (the work may still be
            # running server-side; the caller owns that policy).
            raise
        except urllib.error.URLError as exc:
            if isinstance(exc.reason, TimeoutError):
                raise TimeoutError(
                    f"{url} timed out after {self.timeout}s"
                ) from exc
            raise

    def _raw(
        self,
        path: str,
        body: dict | None = None,
        *,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """:meth:`_raw_once` plus bounded retry for transient failures."""
        retryable = body is None or path in _IDEMPOTENT_POSTS
        attempts = 1 + (self.retries if retryable else 0)
        last: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                delay = min(
                    self.backoff_cap_s, self.backoff_s * 2 ** (attempt - 1)
                )
                time.sleep(delay * (0.5 + random.random()))
            try:
                return self._raw_once(path, body, headers=headers)
            except TimeoutError:
                raise
            except (urllib.error.URLError, ConnectionResetError) as exc:
                last = exc
        reason = getattr(last, "reason", last)
        raise ServiceError(
            f"cannot reach {self.base_url}{path} "
            f"after {attempts} attempt(s): {reason}"
        ) from last

    @staticmethod
    def _service_error(path: str, exc: urllib.error.HTTPError) -> "ServiceError":
        """Surface as much of an HTTP error body as the daemon sent.

        Structured JSON errors contribute their ``error`` message and, for
        ``/v1/register`` rejections, a summary of the validation report;
        non-JSON bodies are carried raw (truncated) instead of dropped.
        """
        raw = b""
        try:
            raw = exc.read()
        except Exception:  # noqa: BLE001 - the socket may already be gone
            pass
        error_body: dict | None = None
        detail = ""
        try:
            error_body = json.loads(raw)
            detail = error_body.get("error", "")
            report = error_body.get("report")
            if isinstance(report, dict):
                issues = report.get("issues")
                if isinstance(issues, list) and issues:
                    rendered = "; ".join(
                        f"{i.get('validator')}/{i.get('code')}: {i.get('message')}"
                        for i in issues[:3]
                        if isinstance(i, dict)
                    )
                    detail = f"{detail} [{len(issues)} issue(s): {rendered}]"
        except Exception:  # noqa: BLE001 - best-effort error detail
            error_body = None
            detail = raw.decode("utf-8", "replace")[:500]
        return ServiceError(
            f"{path} failed with HTTP {exc.code}: {detail or exc.reason}",
            status=exc.code,
            body=error_body,
        )

    def _request(
        self,
        path: str,
        body: dict | None = None,
        *,
        headers: dict[str, str] | None = None,
    ) -> bytes:
        return self._raw(path, body, headers=headers)[2]

    def _request_json(self, path: str, body: dict | None = None) -> dict:
        return json.loads(self._request(path, body))

    # -- endpoints -----------------------------------------------------------
    def healthz(self) -> dict:
        return self._request_json("/healthz")

    def readyz(self) -> tuple[bool, dict]:
        """Readiness: ``(ready, detail)``; a 503 is an answer, not an error."""
        try:
            status, _, data = self._raw("/readyz")
        except ServiceError as exc:
            if exc.status == 503 and exc.body is not None:
                return False, exc.body
            raise
        return status == 200, json.loads(data)

    def metrics(self) -> dict:
        return self._request_json("/metrics")

    def metrics_prometheus(self) -> str:
        """The ``/metrics`` Prometheus text exposition (content-negotiated)."""
        return self._request("/metrics", headers={"Accept": "text/plain"}).decode(
            "utf-8"
        )

    def fleet_metrics_prometheus(self) -> str:
        """The coordinator's merged fleet exposition (per-worker labels)."""
        return self._request(
            "/v1/fleet_metrics", headers={"Accept": "text/plain"}
        ).decode("utf-8")

    def fleet_metrics(self) -> dict:
        """The coordinator's JSON fleet metrics: its own + per-worker."""
        return self._request_json("/v1/fleet_metrics")

    def trace(self, trace_id: str) -> dict:
        """Retained spans of one trace from this daemon (fleet-aggregated
        when the daemon is a coordinator)."""
        return self._request_json(f"/v1/trace/{trace_id}")

    def sweep_raw(
        self,
        op: OpSpec,
        env: DimEnv,
        gpu: GPUSpec = V100,
        *,
        cap: int | None = DEFAULT_SWEEP_CAP,
        seed: int = 0x5EED,
        top_k: int = DEFAULT_TOP_K,
    ) -> bytes:
        """The exact ``/v1/sweep`` response bytes (for identity checks)."""
        return self._request(
            "/v1/sweep",
            sweep_request_wire(op, env, gpu, cap=cap, seed=seed, top_k=top_k),
        )

    def sweep(
        self,
        op: OpSpec,
        env: DimEnv,
        gpu: GPUSpec = V100,
        *,
        cap: int | None = DEFAULT_SWEEP_CAP,
        seed: int = 0x5EED,
        top_k: int = DEFAULT_TOP_K,
    ) -> dict:
        """Ranked configurations + predicted times for one operator."""
        return json.loads(self.sweep_raw(op, env, gpu, cap=cap, seed=seed, top_k=top_k))

    def sweep_conditional(
        self,
        op: OpSpec,
        env: DimEnv,
        gpu: GPUSpec = V100,
        *,
        cap: int | None = DEFAULT_SWEEP_CAP,
        seed: int = 0x5EED,
        top_k: int = DEFAULT_TOP_K,
        etag: str | None = None,
    ) -> tuple[int, str | None, bytes]:
        """A revalidating sweep: ``(status, etag, body bytes)``.

        Pass the ``ETag`` of a previously fetched response; a ``304``
        status with an empty body means the held representation is still
        current.  Without ``etag`` this is a plain fetch that also returns
        the tag to revalidate with later.
        """
        headers = {"If-None-Match": etag} if etag else None
        status, resp_headers, data = self._raw(
            "/v1/sweep",
            sweep_request_wire(op, env, gpu, cap=cap, seed=seed, top_k=top_k),
            headers=headers,
        )
        return status, resp_headers.get("ETag"), data

    def sweep_packed_raw(
        self,
        op: OpSpec,
        env: DimEnv,
        gpu: GPUSpec = V100,
        *,
        cap: int | None = DEFAULT_SWEEP_CAP,
        seed: int = 0x5EED,
        etag: str | None = None,
    ) -> tuple[int, str | None, bytes]:
        """The packed binary ``/v1/sweep`` response: ``(status, etag, bytes)``.

        The bytes are the server's L2 store ``.npz`` file verbatim;
        ``etag`` (from a previous call) turns this into a revalidation
        that answers ``304`` with no body when still current.
        """
        headers = {"Accept": BINARY_CONTENT_TYPE}
        if etag:
            headers["If-None-Match"] = etag
        status, resp_headers, data = self._raw(
            "/v1/sweep",
            sweep_request_wire(op, env, gpu, cap=cap, seed=seed),
            headers=headers,
        )
        return status, resp_headers.get("ETag"), data

    def sweep_packed(
        self,
        op: OpSpec,
        env: DimEnv,
        gpu: GPUSpec = V100,
        *,
        cap: int | None = DEFAULT_SWEEP_CAP,
        seed: int = 0x5EED,
    ) -> dict:
        """The full measurement payload, decoded from the packed response.

        Unlike :meth:`sweep` this carries *every* sampled configuration's
        times (not a ``top_k`` truncation), validated by the store's own
        deserializer and checked against the response ``ETag`` digest.
        """
        _, etag, data = self.sweep_packed_raw(op, env, gpu, cap=cap, seed=seed)
        digest = etag.strip('"') if etag else None
        return payload_from_packed(data, digest=digest)

    def optimize(
        self,
        *,
        model: str = "encoder",
        qkv_fusion: str = "qkv",
        include_backward: bool = True,
        fused: bool = True,
        env: DimEnv | None = None,
        gpu: GPUSpec = V100,
        cap: int | None = DEFAULT_OPTIMIZE_CAP,
        seed: int = 0x5EED,
    ) -> dict:
        """A whole-graph tuned schedule from ``/v1/optimize``."""
        return self._request_json(
            "/v1/optimize",
            optimize_request_wire(
                model=model,
                qkv_fusion=qkv_fusion,
                include_backward=include_backward,
                fused=fused,
                env=env,
                gpu=gpu,
                cap=cap,
                seed=seed,
            ),
        )

    def optimize_raw(
        self,
        *,
        model: str = "encoder",
        qkv_fusion: str = "qkv",
        include_backward: bool = True,
        fused: bool = True,
        env: DimEnv | None = None,
        gpu: GPUSpec = V100,
        cap: int | None = DEFAULT_OPTIMIZE_CAP,
        seed: int = 0x5EED,
    ) -> bytes:
        """The exact ``/v1/optimize`` response bytes (for identity checks)."""
        return self._request(
            "/v1/optimize",
            optimize_request_wire(
                model=model,
                qkv_fusion=qkv_fusion,
                include_backward=include_backward,
                fused=fused,
                env=env,
                gpu=gpu,
                cap=cap,
                seed=seed,
            ),
        )

    def optimize_batch_raw(
        self,
        *,
        model: str = "encoder",
        qkv_fusion: str = "qkv",
        include_backward: bool = True,
        fused: bool = True,
        env: DimEnv | None = None,
        gpu: GPUSpec = V100,
        cap: int | None = DEFAULT_OPTIMIZE_CAP,
        seed: int = 0x5EED,
    ) -> bytes:
        """The exact ``/v1/optimize_batch`` (coordinator) response bytes.

        The body schema — and, by the chaos suite's acceptance criterion,
        the exact bytes — match :meth:`optimize_raw` for the same request;
        only the evaluation is sharded across the fleet.
        """
        return self._request(
            "/v1/optimize_batch",
            optimize_request_wire(
                model=model,
                qkv_fusion=qkv_fusion,
                include_backward=include_backward,
                fused=fused,
                env=env,
                gpu=gpu,
                cap=cap,
                seed=seed,
            ),
        )

    def optimize_batch(self, **kwargs) -> dict:
        """A whole-graph tuned schedule from the fleet coordinator."""
        return json.loads(self.optimize_batch_raw(**kwargs))

    # -- fleet membership ------------------------------------------------------
    def fleet_register(
        self, *, worker_id: str, url: str, ready: bool = False
    ) -> dict:
        """Announce one worker to a coordinator; returns the lease terms."""
        return self._request_json(
            "/v1/fleet/register",
            fleet_register_wire(worker_id=worker_id, url=url, ready=ready),
        )

    def fleet_heartbeat(self, *, worker_id: str, ready: bool) -> dict:
        """Renew one worker lease (404 → the coordinator forgot us)."""
        return self._request_json(
            "/v1/fleet/heartbeat",
            fleet_heartbeat_wire(worker_id=worker_id, ready=ready),
        )

    def fleet_deregister(self, *, worker_id: str) -> dict:
        return self._request_json(
            "/v1/fleet/deregister", {"worker_id": worker_id}
        )

    def fleet_status(self) -> dict:
        """Coordinator fleet state: per-worker health, quarantines, knobs."""
        return self._request_json("/v1/fleet/status")

    def register(
        self,
        *,
        model: str = "encoder",
        qkv_fusion: str = "qkv",
        include_backward: bool = True,
        fused: bool = True,
        env: DimEnv | None = None,
        gpu: GPUSpec = V100,
        cap: int | None = DEFAULT_OPTIMIZE_CAP,
        seed: int = 0x5EED,
    ) -> dict:
        """Have the daemon tune a model and register the schedule."""
        return self._request_json(
            "/v1/register",
            optimize_request_wire(
                model=model,
                qkv_fusion=qkv_fusion,
                include_backward=include_backward,
                fused=fused,
                env=env,
                gpu=gpu,
                cap=cap,
                seed=seed,
            ),
        )

    # -- calibration & rollout --------------------------------------------------
    def report(self, records: list[dict]) -> dict:
        """Submit measured timings to the daemon's feedback store.

        All-or-nothing server-side: one malformed record rejects the
        whole batch with a structured 400 and stores nothing.  Not
        retried on transport failure (an append is not idempotent).
        """
        return self._request_json("/v1/report", {"records": records})

    def calibrate_propose(
        self, *, params: dict | None = None, force: bool = False
    ) -> dict:
        """Fit (or inject) a candidate cost model and shadow-gate it.

        Without ``params`` the daemon fits from its retained feedback;
        with ``params`` the explicit wire is the candidate (the rollout
        smoke test's regression-injection knob, usually with ``force``).
        """
        body: dict = {"force": force}
        if params is not None:
            body["params"] = params
        return self._request_json("/v1/calibrate/propose", body)

    def rollout_status(self) -> dict:
        return self._request_json("/v1/rollout")

    def rollout_action(self, action: str, *, reason: str | None = None) -> dict:
        """Manually ``promote`` or ``rollback`` the canary candidate."""
        body: dict = {"action": action}
        if reason is not None:
            body["reason"] = reason
        return self._request_json("/v1/rollout", body)

    def register_entry(self, entry_wire: dict) -> dict:
        """Submit a pre-built schedule entry; the daemon validates first.

        A claim whose recomputed costs disagree with the stored ones is
        rejected with HTTP 400 and a structured ``report`` body (raised
        here as :class:`ServiceError`).
        """
        return self._request_json("/v1/register", {"entry": entry_wire})

    def schedule(self, digest: str) -> dict:
        """Fetch one registered schedule entry by content digest."""
        return self._request_json(f"/v1/schedule/{digest}")

    def wait_until_ready(
        self,
        *,
        timeout: float = 30.0,
        interval: float = 0.1,
        readiness: bool = False,
    ) -> dict:
        """Poll until the daemon answers (or raise).

        ``readiness=False`` (the default) polls ``/healthz`` — liveness,
        the historical behavior.  ``readiness=True`` polls ``/readyz``
        and also waits for it to answer 200: store reachable, engine
        warm-up done, not draining.
        """
        deadline = time.monotonic() + timeout
        last: object = None
        while time.monotonic() < deadline:
            try:
                if readiness:
                    ok, detail = self.readyz()
                    if ok:
                        return detail
                    last = detail
                else:
                    return self.healthz()
            except ServiceError as exc:
                last = exc
            time.sleep(interval)
        raise ServiceError(
            f"daemon at {self.base_url} not ready after {timeout}s: {last}"
        )
