"""Request coalescing: single-flight evaluation and the bounded L1 cache.

A tuning daemon's hot failure mode is the *thundering herd*: N clients ask
for the same (expensive, deterministic) sweep at once and a naive server
evaluates it N times.  :class:`SingleFlight` guarantees that concurrent
callers of one key trigger exactly one evaluation — the first caller in
becomes the **leader** and computes; everyone else parks on an event and
receives the leader's result (or its exception).

:class:`BoundedCache` is the service's in-memory tier: a plain LRU over
digest-keyed payloads.  The engine's process memo is deliberately
unbounded (batch runs die quickly); a daemon must not be, so the service
keeps its own capped cache and leaves the engine memo out of its request
path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, TypeVar

__all__ = ["BoundedCache", "SingleFlight"]

T = TypeVar("T")


class _Flight:
    """One in-progress evaluation and the callers waiting on it."""

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: object = None
        self.error: BaseException | None = None


class SingleFlight:
    """Per-key single-flight execution for concurrent identical requests."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}
        #: Requests served by waiting on another caller's evaluation.
        self.coalesced = 0
        #: Evaluations actually led (== calls of ``fn``).
        self.led = 0

    def inflight(self) -> int:
        """Number of keys currently being evaluated."""
        with self._lock:
            return len(self._flights)

    def do(
        self, key: str, fn: Callable[[], T], *, timeout: float | None = None
    ) -> tuple[T, bool]:
        """Run ``fn`` once per concurrent batch of callers of ``key``.

        Returns ``(value, leader)`` where ``leader`` is True for the caller
        that actually evaluated.  An exception raised by the leader's
        ``fn`` propagates to *every* caller of that flight; the flight is
        retired either way, so a later request retries the evaluation
        instead of inheriting a cached failure.  ``timeout`` bounds how
        long a follower waits on the leader — a hung evaluation then fails
        that follower with :class:`TimeoutError` instead of parking it
        forever.
        """
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = self._flights[key] = _Flight()
                self.led += 1
            else:
                self.coalesced += 1

        if not leader:
            if not flight.done.wait(timeout):
                raise TimeoutError(
                    f"gave up after {timeout}s waiting on the in-flight "
                    f"evaluation of {key!r}"
                )
            if flight.error is not None:
                raise flight.error
            return flight.value, False  # type: ignore[return-value]

        try:
            flight.value = fn()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                del self._flights[key]
            flight.done.set()
        return flight.value, True  # type: ignore[return-value]


class BoundedCache:
    """A thread-safe LRU mapping with an entry cap (the service's L1)."""

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._items: OrderedDict[str, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str, *, record: bool = True):
        """The cached value, refreshed to most-recently-used; else None.

        ``record=False`` skips the hit/miss counters — for internal
        re-checks that would otherwise double-count one request.
        """
        with self._lock:
            try:
                value = self._items[key]
            except KeyError:
                if record:
                    self.misses += 1
                return None
            self._items.move_to_end(key)
            if record:
                self.hits += 1
            return value

    def put(self, key: str, value) -> None:
        with self._lock:
            self._items[key] = value
            self._items.move_to_end(key)
            while len(self._items) > self.max_entries:
                self._items.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def clear(self) -> None:
        with self._lock:
            self._items.clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._items),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
