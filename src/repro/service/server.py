"""The tuning daemon: a threaded HTTP server over the sweep engine.

Endpoints (all JSON, canonical serialization):

* ``POST /v1/sweep`` — best configurations + predicted times for one
  operator.  Resolution order per request digest: bounded in-memory cache
  (L1) → in-flight coalescing (single-flight) → persistent store (L2) →
  delta re-sweep from a structural L2 twin → cold batched evaluation;
  every request is attributed to exactly one tier in ``/metrics``.
  Responses carry a strong ``ETag``; a request presenting it back via
  ``If-None-Match`` gets ``304 Not Modified`` with an empty body, before
  any resolution work.  ``Accept: application/x-repro-npz`` opts into the
  packed binary representation — the L2 store's own ``.npz`` payload,
  streamed zero-copy from the store file when one exists.
* ``POST /v1/optimize`` — a whole-graph tuned schedule through the
  parallel scheduler (:func:`repro.engine.scheduler.sweep_graph`), with
  the same coalescing over a request-level digest.
* ``POST /v1/register`` — validate-then-store a schedule into the
  content-addressed registry: either a pre-built entry (``{"entry":
  ...}``, whose claimed costs are recomputed and must agree bit-exactly)
  or an optimize-style request the daemon tunes and registers itself.  A
  claim that fails validation is rejected with a structured report body,
  never stored.
* ``GET /v1/schedule/<digest>`` — one registered entry by content digest
  (404 on a miss).
* ``POST /v1/report`` — retain measured kernel timings in the crash-safe
  calibration feedback store (validate-all-before-append-any; a batch
  with one malformed record changes nothing).
* ``POST /v1/calibrate/propose`` — fit a candidate cost model from the
  retained feedback (or accept explicit parameters) and shadow-gate it
  into a canary rollout.
* ``GET/POST /v1/rollout`` — rollout status / manual promote-or-rollback
  of the canary candidate.  While a canary is live, a deterministic
  slice of ``/v1/sweep`` traffic is dual-scored against the candidate;
  the active model always serves.
* ``GET /healthz`` — liveness plus identity: package version, the
  *served* cost-model version, payload format, cache/store/registry
  occupancy.
* ``GET /metrics`` — tier hit counts, p50/p95/p99 latencies, registry
  lifecycle counters and the latest background-revalidation sweep; the
  same counters render as Prometheus text exposition under ``Accept:
  text/plain`` (content negotiation, JSON stays the default).
* ``GET /v1/trace/<trace_id>`` — every span this process retains for one
  trace (the ring buffer behind ``repro trace``).

Every request runs inside a trace span (``repro.obs``) that adopts the
client's ``traceparent`` header when present, so a traced request through
the fleet yields one connected cross-process tree.  With tracing off
(the default) the span machinery is a shared no-op object.

The request path never touches the engine's unbounded process memo: sweep
payloads live in the service's :class:`~repro.service.coalesce.BoundedCache`.
Whole-graph optimization does route through the scheduler (which memoizes
per-op sweeps in L1), so the service clears the engine memo whenever it
grows past ``memo_limit`` entries — a long-lived daemon stays bounded.
"""

from __future__ import annotations

import os
import shutil
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from json import JSONDecodeError, loads
from time import monotonic, perf_counter, time
from typing import BinaryIO

from repro import __version__, obs
from repro.autotuner.cache import CacheMismatch
from repro.engine.memo import clear_sweep_memo, sweep_memo_stats
from repro.engine.scheduler import DISABLE_STORE, sweep_graph
from repro.engine.store import (
    PAYLOAD_FORMAT,
    SweepStore,
    compute_payload,
    get_sweep_store,
    pack_payload_bytes,
)
from repro.engine.sweep import delta_payload_from_store, sweep_from_payload
from repro.hardware.cost_model import CostModel
from repro.hardware.params import active_cost_model_version
from repro.obs.export import trace_tree
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE, wants_prometheus

from .coalesce import BoundedCache, SingleFlight
from .fleet.faults import FaultInjector
from .metrics import ServiceMetrics
from .protocol import (
    BINARY_CONTENT_TYPE,
    PROTOCOL_VERSION,
    ProtocolError,
    accepts_packed,
    build_request_graph,
    canonical_json_bytes,
    etag_matches,
    optimize_request_digest,
    optimize_response_from_sweeps,
    parse_optimize_request,
    parse_sweep_request,
    sweep_etag,
    sweep_request_digest,
    sweep_response_from_sweep,
)

__all__ = [
    "NotFoundError",
    "RegistrationRejected",
    "TuningService",
    "WireReply",
    "make_server",
    "serve_background",
]

#: Largest accepted request body; whole-transformer graphs are ~100 KB.
MAX_BODY_BYTES = 16 * 2**20

#: Largest single-op evaluation served cold.  Uncapped fused-kernel spaces
#: reach ~1e10 configurations — one such request would OOM the daemon, so
#: anything above this estimate is rejected with a 400, not attempted.
MAX_SWEEP_CONFIGS = 200_000

#: Largest per-op cap accepted by ``/v1/optimize`` (whole graphs contain
#: fused kernels whose uncapped spaces are ~1e10 configurations).
MAX_OPTIMIZE_CAP = 20_000

#: How long a coalesced follower waits on the leading evaluation before
#: failing its own request — a hung leader must not park waiters forever.
FLIGHT_TIMEOUT_S = 600.0

_UNSET = object()


class NotFoundError(KeyError):
    """A well-formed request for a resource that does not exist (HTTP 404)."""


@dataclass
class WireReply:
    """A fully-determined HTTP response below the JSON layer.

    ``body`` carries in-memory responses; ``stream`` (exclusive with a
    non-empty body) is an open binary file the handler copies straight to
    the socket — the zero-copy path for packed payloads already sitting in
    the L2 store.  Whoever sends the reply owns closing the stream.
    """

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    stream: BinaryIO | None = None
    stream_len: int = 0


class RegistrationRejected(ProtocolError):
    """A ``/v1/register`` claim that failed validation (HTTP 400 + report)."""

    def __init__(self, message: str, report: dict) -> None:
        super().__init__(message)
        self.report = report


class TuningService:
    """The daemon's state and request handlers, HTTP-free (unit-testable)."""

    def __init__(
        self,
        *,
        store: SweepStore | None | object = _UNSET,
        registry=_UNSET,
        jobs: int | None = None,
        cache_entries: int = 1024,
        memo_limit: int = 4096,
        faults: FaultInjector | None | object = _UNSET,
        warm: bool = True,
        calibration_dir=_UNSET,
    ) -> None:
        if store is _UNSET:
            store = get_sweep_store()
        self.store: SweepStore | None = store  # type: ignore[assignment]
        if registry is _UNSET:
            # Lazy import: the registry package is only needed by daemons
            # that serve it (and pulls validation along at call time).
            from repro.registry import get_schedule_registry

            registry = get_schedule_registry()
        self.registry = registry
        if faults is _UNSET:
            # Fault injection is opt-in per process via REPRO_FAULT_SPEC;
            # a clean environment yields None and the handler hooks no-op.
            faults = FaultInjector.from_env()
        self.faults: FaultInjector | None = faults  # type: ignore[assignment]
        self.jobs = jobs
        self.memo_limit = memo_limit
        self.cache = BoundedCache(cache_entries)
        self.flights = SingleFlight()
        self.metrics = ServiceMetrics()
        # How this process labels its spans/metrics in a fleet trace; the
        # CLI overwrites it per role ("coordinator", "worker:<id>").
        self.service_name = "tuningd"
        self.metrics.registry.gauge_callback(
            "repro_l1_cache_entries",
            "Entries currently held by the L1 payload cache.",
            lambda: self.cache.stats()["entries"],
        )
        self.metrics.registry.gauge_callback(
            "repro_coalesced_inflight",
            "Evaluations currently led through the single-flight layer.",
            lambda: self.flights.inflight(),
        )
        self._revalidator: threading.Thread | None = None
        self._revalidate_stop = threading.Event()
        # Readiness state: ``warm=True`` (the default, and every in-process
        # test harness) starts ready; daemons pass ``warm=False`` and flip
        # it via start_warmup() so /readyz distinguishes "up" from "usable".
        self._warmed = threading.Event()
        if warm:
            self._warmed.set()
        self._draining = threading.Event()
        self._warmup_thread: threading.Thread | None = None
        # Calibration: measurement feedback + the staged rollout manager.
        # The directory resolves like the registry's (explicit >
        # REPRO_CALIBRATION_DIR > alongside the store > in-memory); the
        # manager's recovery runs here, so a daemon restarted mid-promotion
        # comes up serving exactly one of {prior, promoted}.
        from repro.calibrate import (
            FeedbackStore,
            RolloutManager,
            resolve_calibration_root,
        )

        if calibration_dir is _UNSET:
            root = resolve_calibration_root(store=self.store)
        else:
            root = calibration_dir  # None = explicitly in-memory
        self.feedback = FeedbackStore(root)
        self.rollout = RolloutManager(
            root, metrics=self.metrics, faults=self.faults
        )

    # -- tiered resolution ---------------------------------------------------
    def _resolve(self, digest: str, compute, *, use_store: bool = True, delta=None):
        """Resolve one digest through L1 → in-flight → L2 → delta → evaluation.

        ``compute`` runs at most once across all concurrent callers of
        ``digest``; the chosen tier is recorded in the metrics.
        ``delta`` (optional) is tried between the L2 miss and the cold
        evaluation: it may rebuild the payload from a structurally
        identical stored sweep, returning ``None`` when it cannot.
        ``use_store=False`` skips the L2 step for values that are not store
        payloads (whole optimize responses).
        """
        value = self.cache.get(digest)
        if value is not None:
            self.metrics.record_tier("l1")
            obs.set_attr("resolve.tier", "l1")
            return value
        store = self.store if use_store else None

        def _lead():
            # Re-check L1: this caller may have missed the cache before a
            # prior leader's put and only now entered a fresh flight.
            # (record=False: the fast path already counted this request.)
            payload = self.cache.get(digest, record=False)
            if payload is not None:
                return payload, "l1"
            tier = "l2"
            if store is not None:
                try:
                    payload = store.load(digest)
                except CacheMismatch:
                    payload = None  # recompute and overwrite
            if payload is None and delta is not None:
                payload = delta()
                if payload is not None:
                    tier = "delta"
            if payload is None:
                payload = compute()
                tier = "computed"
            if tier in ("delta", "computed") and store is not None:
                # Delta results persist under the *exact* digest too — the
                # next same-size request is a plain L2 hit, and the entry
                # becomes a structural base for further perturbations.
                store.save(digest, payload)
            # Populate L1 *before* the flight retires: a request arriving
            # between flight retirement and a later cache.put would find
            # neither and lead a second evaluation.
            self.cache.put(digest, payload)
            return payload, tier

        (value, tier), leader = self.flights.do(
            digest, _lead, timeout=FLIGHT_TIMEOUT_S
        )
        if not leader:
            tier = "coalesced"
        self.metrics.record_tier(tier)
        obs.set_attr("resolve.tier", tier)
        return value

    def _bound_engine_memo(self) -> None:
        """Keep the engine's (unbounded) L1 memo finite in a daemon."""
        if sweep_memo_stats()["size"] > self.memo_limit:
            clear_sweep_memo()

    # -- endpoint bodies -----------------------------------------------------
    def _resolve_sweep(self, req, digest: str) -> dict:
        """One sweep request's payload through the full tier chain."""
        # The size estimate is the scheduler's own pool-threshold helper:
        # cheap (cached feasibility/space scans), and exact enough to keep
        # an uncapped wide-kernel request from OOM-killing the daemon.
        from repro.engine.scheduler import _estimated_configs

        obs.set_attr("store.digest", digest)
        estimated = _estimated_configs(req.op, req.env, req.cap)
        if estimated > MAX_SWEEP_CONFIGS:
            raise ProtocolError(
                f"sweep of ~{estimated} configurations exceeds the served "
                f"limit of {MAX_SWEEP_CONFIGS}; pass a smaller cap"
            )
        payload = self._resolve(
            digest,
            lambda: compute_payload(
                req.op, req.env, req.gpu, cap=req.cap, seed=req.seed
            ),
            delta=lambda: delta_payload_from_store(
                req.op, req.env, req.gpu, cap=req.cap, seed=req.seed,
                store=self.store,
            ),
        )
        self._maybe_canary(req, digest, payload)
        return payload

    def _maybe_canary(self, req, digest: str, payload: dict) -> None:
        """Dual-score one resolved sweep while a canary rollout is live.

        The slice is a deterministic function of the request digest, so
        the same traffic mix always canaries the same requests.  The
        candidate model re-predicts the *chosen best* configuration with
        an explicit-parameters :class:`CostModel` — the globally served
        parameters are never touched, and the response the caller is
        about to serve is entirely the active model's.  Divergence
        verdicts (including auto-rollback and auto-promotion) fold into
        the rollout manager.
        """
        rollout = self.rollout
        if not rollout.should_canary(digest):
            return
        candidate = rollout.candidate_params()
        if candidate is None:
            return
        try:
            from repro.engine.sweep import space_from_payload

            order = payload.get("order")
            totals = payload.get("sorted_totals")
            if order is None or totals is None or not len(totals):
                return
            active_best = float(totals[0])
            if active_best <= 0:
                return
            config = space_from_payload(req.op, payload).config_at(int(order[0]))
            kt = CostModel(req.gpu, params=candidate).time_op(
                req.op, config, req.env
            )
            if kt is None:
                return
            divergence = abs(kt.total_us - active_best) / active_best
        except Exception:  # noqa: BLE001 - scoring must never break serving
            self.metrics.record_error("canary")
            return
        self.metrics.record_calibration("canary_request")
        rollout.record_canary(divergence)

    def handle_sweep(self, body: dict) -> dict:
        req = parse_sweep_request(body)
        digest = sweep_request_digest(req)
        payload = self._resolve_sweep(req, digest)
        sweep = sweep_from_payload(req.op, payload)
        return sweep_response_from_sweep(sweep, digest=digest, top_k=req.top_k)

    def handle_sweep_wire(
        self, body: dict, *, accept: str | None = None, if_none_match: str | None = None
    ) -> WireReply:
        """``/v1/sweep`` below the JSON layer: ETag revalidation + packing.

        The ETag is revalidated *before* the size guard and any resolution
        work — a 304 costs one digest computation, nothing else.  That is
        sound because responses are pure functions of the request digest
        (and ``top_k``, which the JSON tag carries): a client holding a
        representation under a matching tag holds the current bytes.
        """
        req = parse_sweep_request(body)
        digest = sweep_request_digest(req)
        binary = accepts_packed(accept)
        etag = sweep_etag(digest, top_k=None if binary else req.top_k)
        if etag_matches(if_none_match, etag):
            self.metrics.record_response("not_modified")
            return WireReply(status=304, headers={"ETag": etag})
        payload = self._resolve_sweep(req, digest)
        if binary:
            reply = self._packed_reply(digest, payload, etag)
            self.metrics.record_response("binary")
            return reply
        sweep = sweep_from_payload(req.op, payload)
        response = sweep_response_from_sweep(sweep, digest=digest, top_k=req.top_k)
        self.metrics.record_response("json")
        return WireReply(
            status=200,
            headers={"Content-Type": "application/json", "ETag": etag},
            body=canonical_json_bytes(response),
        )

    def _packed_reply(self, digest: str, payload: dict, etag: str) -> WireReply:
        """The packed binary representation, streamed from L2 when possible.

        The wire bytes are exactly the store's ``.npz`` file, so a warm
        store serves an open file handle and the handler copies it to the
        socket without deserializing; a storeless daemon (or a just-evicted
        entry) packs the in-memory payload instead — byte-identical content
        either way, since the store writer is deterministic.
        """
        headers = {"Content-Type": BINARY_CONTENT_TYPE, "ETag": etag}
        if self.store is not None:
            try:
                fh = open(self.store.path_for(digest), "rb")
            except OSError:
                fh = None  # evicted or never persisted; fall through to pack
            if fh is not None:
                size = os.fstat(fh.fileno()).st_size
                return WireReply(
                    status=200, headers=headers, stream=fh, stream_len=size
                )
        return WireReply(
            status=200, headers=headers, body=pack_payload_bytes(digest, payload)
        )

    def handle_optimize(self, body: dict) -> dict:
        req = parse_optimize_request(body)
        if req.cap is None or req.cap > MAX_OPTIMIZE_CAP:
            raise ProtocolError(
                f"optimize requires a cap of at most {MAX_OPTIMIZE_CAP} "
                "(whole graphs contain kernels with ~1e10-config spaces)"
            )
        digest = optimize_request_digest(req)
        obs.set_attr("request.digest", digest)

        def _compute() -> dict:
            from repro.configsel.chain import ChainError
            from repro.configsel.selector import select_configurations
            from repro.configsel.sssp import SSSPError

            graph = build_request_graph(req)
            cost = CostModel(req.gpu)
            t0 = perf_counter()
            sweeps = sweep_graph(
                graph,
                req.env,
                cost,
                cap=req.cap,
                seed=req.seed,
                jobs=self.jobs,
                # A storeless service must stay storeless: store=None would
                # fall back to the process-active store inside sweep_graph.
                store=self.store if self.store is not None else DISABLE_STORE,
            )
            sweep_s = perf_counter() - t0
            # Global configuration selection on the swept graph (the
            # vectorized fast path unless REPRO_CONFIGSEL_FAST=0).  Not
            # every requestable graph has a primary chain from "x"; those
            # responses simply carry no selection section.
            t0 = perf_counter()
            try:
                selection = select_configurations(
                    graph, req.env, cost, sweeps=sweeps, cap=req.cap
                )
            except (SSSPError, ChainError):
                selection = None
            select_s = perf_counter() - t0
            self.metrics.record_optimize_breakdown(sweep_s, select_s)
            self._bound_engine_memo()
            return optimize_response_from_sweeps(
                graph, sweeps, digest=digest, selection=selection
            )

        # The cached value here is the whole response body (not a store
        # payload), so L2 is skipped; the response's per-sweep work is
        # still shared with /v1/sweep through the L2 store digests inside
        # sweep_graph.
        return self._resolve(digest, _compute, use_store=False)

    # -- schedule registry ---------------------------------------------------
    def handle_register(self, body: dict) -> dict:
        """Validate-then-store one schedule into the registry.

        Two body forms: ``{"entry": <entry wire>}`` registers a claim built
        elsewhere — its digest must hash from its own content and every
        validator must pass (the cost validator recomputes the claimed
        times bit-exactly), else the claim is rejected with the full
        report and nothing is stored.  An optimize-style body (``{"model":
        ...}``) makes the daemon tune the schedule itself and register the
        result.
        """
        from repro.registry import ScheduleEntry
        from repro.registry.entry import EntryError
        from repro.validation import validate_entry

        if self.registry is None:
            raise ProtocolError(
                "this daemon has no schedule registry configured "
                "(set REPRO_SCHEDULE_REGISTRY or attach a sweep store)"
            )
        if not isinstance(body, dict):
            raise ProtocolError("request body must be a JSON object")
        if "entry" in body:
            try:
                entry = ScheduleEntry.from_wire(body["entry"], "entry")
                recomputed = entry.recompute_digest()
            except EntryError as exc:
                raise ProtocolError(str(exc)) from exc
            if recomputed != entry.digest:
                raise ProtocolError(
                    f"entry declares digest {entry.digest}, but its content "
                    f"hashes to {recomputed}"
                )
        else:
            entry = self._tune_entry(body)
        report = validate_entry(entry)
        if not report.ok:
            self.metrics.record_registry("rejected")
            raise RegistrationRejected(
                f"schedule {entry.digest} failed validation with "
                f"{len(report.errors())} error(s); nothing was stored",
                report.to_wire(),
            )
        self.registry.register(entry)
        self.metrics.record_registry("registered")
        return {
            "digest": entry.digest,
            "registered": True,
            "total_us": entry.total_us,
            "report": report.to_wire(),
        }

    def _tune_entry(self, body: dict):
        """Tune an optimize-style request and build its registry entry."""
        from repro.configsel.chain import ChainError
        from repro.configsel.selector import select_configurations
        from repro.configsel.sssp import SSSPError
        from repro.registry import build_entry

        req = parse_optimize_request(body)
        if req.cap is None or req.cap > MAX_OPTIMIZE_CAP:
            raise ProtocolError(
                f"register requires a cap of at most {MAX_OPTIMIZE_CAP} "
                "(whole graphs contain kernels with ~1e10-config spaces)"
            )
        graph = build_request_graph(req)
        cost = CostModel(req.gpu)
        sweeps = sweep_graph(
            graph,
            req.env,
            cost,
            cap=req.cap,
            seed=req.seed,
            jobs=self.jobs,
            store=self.store if self.store is not None else DISABLE_STORE,
        )
        try:
            selection = select_configurations(
                graph, req.env, cost, sweeps=sweeps, cap=req.cap, seed=req.seed
            )
        except (SSSPError, ChainError) as exc:
            raise ProtocolError(
                f"model {req.model!r} admits no global selection: {exc}"
            ) from exc
        self._bound_engine_memo()
        return build_entry(
            graph,
            req.env,
            cost,
            selection,
            cap=req.cap,
            seed=req.seed,
            registrar="daemon",
        )

    def handle_schedule(self, digest: str) -> dict:
        """One registered entry by content digest (404 on a clean miss)."""
        if self.registry is None:
            raise ProtocolError(
                "this daemon has no schedule registry configured"
            )
        if not digest or "/" in digest or "." in digest:
            raise ProtocolError(f"malformed schedule digest {digest!r}")
        entry = self.registry.load(digest)  # RegistryError (corrupt) → 500
        if entry is None:
            raise NotFoundError(f"no registered schedule {digest}")
        self.metrics.record_registry("served")
        return entry.to_wire()

    # -- calibration & rollout ------------------------------------------------
    def handle_report(self, body: dict) -> dict:
        """``POST /v1/report``: retain measured timings, all-or-nothing.

        Every record is validated *before* any is appended — a batch with
        one malformed record (bad label, NaN/negative timing, a version
        that is not the served one, unknown fields) is rejected with a
        structured 400 and the feedback store's bytes are unchanged.
        """
        from repro.calibrate import FeedbackError, validate_record

        if not isinstance(body, dict):
            raise ProtocolError("request body must be a JSON object")
        records = body.get("records")
        if not isinstance(records, list) or not records:
            raise ProtocolError("report requires a non-empty records list")
        served = active_cost_model_version()
        validated = []
        try:
            for i, wire in enumerate(records):
                validated.append(
                    validate_record(
                        wire, f"records[{i}]", served_version=served
                    )
                )
        except FeedbackError as exc:
            self.metrics.record_calibration("report_rejected")
            raise ProtocolError(str(exc)) from exc
        accepted = self.feedback.append(validated)
        self.metrics.record_calibration("report")
        return {
            "accepted": accepted,
            "total": self.feedback.count(),
            "corpus_digest": self.feedback.corpus_digest(),
            "cost_model_version": served,
        }

    def handle_calibrate_propose(self, body: dict) -> dict:
        """``POST /v1/calibrate/propose``: fit (or accept) a candidate and
        shadow-gate it into canary.

        Without ``params`` the candidate is fitted from the retained
        feedback corpus.  An explicit ``params`` wire is the injection
        knob the rollout smoke test uses to push a deliberately-regressing
        candidate (with ``force=true`` to skip the shadow gate — the
        canary guardrail still stands).
        """
        from repro.calibrate import CandidateModel, RolloutError, fit_candidate
        from repro.hardware.params import ParamsError, params_from_wire

        if not isinstance(body, dict):
            raise ProtocolError("request body must be a JSON object")
        force = body.get("force", False)
        if not isinstance(force, bool):
            raise ProtocolError("force must be a boolean")
        records = self.feedback.records()
        try:
            if "params" in body:
                params = params_from_wire(body["params"], "params")
                candidate = CandidateModel.build(
                    params, {"source": "explicit-params"}
                )
            else:
                if not records:
                    raise ProtocolError(
                        "the feedback store is empty; POST /v1/report "
                        "(or run `repro report`) before proposing"
                    )
                candidate = fit_candidate(records)
        except ParamsError as exc:
            raise ProtocolError(str(exc)) from exc
        try:
            status = self.rollout.propose(candidate, records, force=force)
        except RolloutError as exc:
            raise ProtocolError(str(exc)) from exc
        return {
            "proposed": True,
            "candidate_version": candidate.version,
            "provenance": dict(candidate.provenance),
            "rollout": status,
        }

    def handle_rollout_status(self) -> dict:
        return {"rollout": self.rollout.status()}

    def handle_rollout_action(self, body: dict) -> dict:
        """``POST /v1/rollout``: manual ``promote`` / ``rollback``."""
        from repro.calibrate import RolloutError

        if not isinstance(body, dict):
            raise ProtocolError("request body must be a JSON object")
        action = body.get("action")
        try:
            if action == "promote":
                status = self.rollout.promote()
            elif action == "rollback":
                status = self.rollout.rollback(
                    str(body.get("reason", "manual"))
                )
            else:
                raise ProtocolError(
                    f"unknown rollout action {action!r}; "
                    f"known: promote, rollback"
                )
        except RolloutError as exc:
            raise ProtocolError(str(exc)) from exc
        return {"action": action, "rollout": status}

    def revalidate_registry(self, *, deep: bool = False) -> dict:
        """Re-validate every registered entry; summarize into ``/metrics``.

        Corrupt entries count as failures (with the load error as the
        report) rather than aborting the sweep — one bad file must not
        hide the rest of the registry.
        """
        from repro.registry import RegistryError
        from repro.validation import validate_entry

        summary: dict = {
            "at": time(),
            "deep": deep,
            "checked": 0,
            "passed": 0,
            "failed": 0,
            "failures": {},
        }
        if self.registry is None:
            self.metrics.record_revalidation(summary)
            return summary
        for digest, item in self.registry.entries():
            summary["checked"] += 1
            if isinstance(item, RegistryError):
                summary["failed"] += 1
                summary["failures"][digest] = [f"error(registry/load): {item}"]
                self.metrics.record_registry("revalidate_fail")
                continue
            report = validate_entry(item, deep=deep)
            if report.ok:
                summary["passed"] += 1
                self.metrics.record_registry("revalidate_pass")
            else:
                summary["failed"] += 1
                summary["failures"][digest] = [
                    i.render() for i in report.errors()[:8]
                ]
                self.metrics.record_registry("revalidate_fail")
        self.metrics.record_revalidation(summary)
        return summary

    def start_revalidation(self, interval_s: float = 300.0) -> None:
        """Run :meth:`revalidate_registry` periodically on a daemon thread."""
        if self._revalidator is not None and self._revalidator.is_alive():
            return
        self._revalidate_stop.clear()

        def _loop() -> None:
            while not self._revalidate_stop.wait(interval_s):
                try:
                    self.revalidate_registry()
                except Exception:  # noqa: BLE001 - the loop must survive
                    self.metrics.record_error("revalidate")

        self._revalidator = threading.Thread(
            target=_loop, daemon=True, name="registry-revalidator"
        )
        self._revalidator.start()

    def stop_revalidation(self) -> None:
        self._revalidate_stop.set()
        if self._revalidator is not None:
            self._revalidator.join(timeout=5)
            self._revalidator = None

    # -- liveness vs. readiness ------------------------------------------------
    def ready(self) -> tuple[bool, dict]:
        """Readiness verdict plus the per-check detail ``/readyz`` serves.

        Liveness (``/healthz``) answers "is the process up"; this answers
        "should traffic be routed here": the engine warm-up has run, the
        store directory (if any) is reachable, and the daemon is not
        draining for shutdown.  The fleet registry keys worker
        *eligibility* off this distinction.
        """
        checks = {
            "warm": self._warmed.is_set(),
            "draining": self._draining.is_set(),
            "store": self.store is None or self._store_reachable(),
        }
        ok = checks["warm"] and checks["store"] and not checks["draining"]
        return ok, checks

    def _store_reachable(self) -> bool:
        """Can the store's root directory be used?

        The store itself creates its root lazily on first write, so a
        fresh daemon pointed at a not-yet-existing directory is healthy —
        do the same idempotent mkdir the first write would and check the
        result, which also proves the path is actually writable.
        """
        try:
            self.store.root.mkdir(parents=True, exist_ok=True)
        except OSError:
            return False
        return self.store.root.is_dir()

    def handle_readyz(self) -> WireReply:
        ok, checks = self.ready()
        body = {"status": "ok" if ok else "unavailable", "checks": checks}
        return WireReply(
            status=200 if ok else 503,
            headers={"Content-Type": "application/json"},
            body=canonical_json_bytes(body),
        )

    def start_warmup(self) -> None:
        """Warm the engine on a background thread, then flip readiness.

        The warm-up sweeps one tiny operator end to end — importing numpy,
        building the feasibility caches, exercising the vectorized
        evaluator — so the first real request doesn't pay cold-start
        latency.  Failure still sets readiness (a degraded daemon beats an
        unreachable one) but is counted in the error metrics.
        """
        if self._warmed.is_set():
            return
        if self._warmup_thread is not None and self._warmup_thread.is_alive():
            return

        def _warm() -> None:
            try:
                from repro.ir.dims import bert_large_dims
                from repro.transformer.graph_builder import build_mha_graph

                graph = build_mha_graph(
                    qkv_fusion="unfused", include_backward=False
                )
                op = next(o for o in graph.ops if not o.is_view)
                env = bert_large_dims(batch=1, seq=16)
                from repro.hardware.spec import V100

                compute_payload(op, env, V100, cap=4, seed=0x5EED)
            except Exception:  # noqa: BLE001 - degraded beats unreachable
                self.metrics.record_error("warmup")
            finally:
                self._warmed.set()

        self._warmup_thread = threading.Thread(
            target=_warm, daemon=True, name="engine-warmup"
        )
        self._warmup_thread.start()

    def begin_drain(self) -> None:
        """Flip readiness off for shutdown; in-flight requests finish."""
        self._draining.set()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def healthz(self) -> dict:
        return {
            "status": "ok",
            "service": "repro-tuningd",
            "ready": self.ready()[0],
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            # The *served* version: a promotion changes this atomically.
            "cost_model_version": active_cost_model_version(),
            "rollout_phase": self.rollout.status()["phase"],
            "payload_format": PAYLOAD_FORMAT,
            "store": None if self.store is None else self.store.stats(),
            "registry": None if self.registry is None else self.registry.stats(),
            "cache": self.cache.stats(),
            "inflight": self.flights.inflight(),
        }

    def metrics_body(self) -> dict:
        body = self.metrics.snapshot()
        body["coalescing"] = {
            "led": self.flights.led,
            "coalesced": self.flights.coalesced,
            "inflight": self.flights.inflight(),
        }
        body["cache"] = self.cache.stats()
        body["store"] = None if self.store is None else self.store.stats()
        body["registry"]["store"] = (
            None if self.registry is None else self.registry.stats()
        )
        return body

    def metrics_reply(self, accept: str | None = None):
        """``GET /metrics``: the JSON snapshot, or Prometheus text under
        ``Accept: text/plain`` (existing consumers send no Accept header
        and keep getting JSON)."""
        if wants_prometheus(accept):
            return WireReply(
                status=200,
                headers={"Content-Type": PROMETHEUS_CONTENT_TYPE},
                body=self.metrics.prometheus().encode("utf-8"),
            )
        return self.metrics_body()

    def handle_trace(self, trace_id: str) -> dict:
        """``GET /v1/trace/<id>``: this process's retained spans of a trace.

        404 distinguishes "never saw it / aged out" from an empty list —
        the coordinator's fleet aggregation skips 404ing members.
        """
        if not trace_id or "/" in trace_id:
            raise ProtocolError(f"malformed trace id {trace_id!r}")
        spans = obs.get_tracer().trace(trace_id)
        if not spans:
            raise NotFoundError(f"no spans retained for trace {trace_id}")
        tree = trace_tree(spans)
        return {
            "trace_id": trace_id,
            "span_count": tree["spans"],
            "connected": tree["connected"],
            "spans": spans,
        }


def _json_reply(status: int, obj: dict) -> WireReply:
    """A canonical-JSON :class:`WireReply` (the handler's default shape)."""
    return WireReply(
        status=status,
        headers={"Content-Type": "application/json"},
        body=canonical_json_bytes(obj),
    )


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP onto a :class:`TuningService` (set per server class)."""

    service: TuningService  # injected by make_server
    quiet = True
    server_version = f"repro-tuningd/{__version__}"
    # Socket timeout: a client that claims a Content-Length and then stalls
    # must not pin a handler thread of a weeks-lived daemon forever.
    timeout = 60

    # -- plumbing ------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send_json(self, status: int, obj: dict) -> None:
        body = canonical_json_bytes(obj)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_reply(self, reply: WireReply) -> None:
        try:
            self.send_response(reply.status)
            for name, value in reply.headers.items():
                self.send_header(name, value)
            if reply.stream is not None:
                self.send_header("Content-Length", str(reply.stream_len))
                self.end_headers()
                shutil.copyfileobj(reply.stream, self.wfile)
            else:
                self.send_header("Content-Length", str(len(reply.body)))
                self.end_headers()
                if reply.body:
                    self.wfile.write(reply.body)
        finally:
            if reply.stream is not None:
                reply.stream.close()

    def _read_body(self) -> dict:
        length = self.headers.get("Content-Length")
        if length is None:
            raise ProtocolError("missing Content-Length")
        try:
            n = int(length)
        except ValueError:
            raise ProtocolError(f"malformed Content-Length {length!r}") from None
        if not 0 <= n <= MAX_BODY_BYTES:
            # Negative would turn rfile.read into read-until-close, pinning
            # this handler thread for as long as the client keeps the socket.
            raise ProtocolError(f"Content-Length outside [0, {MAX_BODY_BYTES}]")
        raw = self.rfile.read(n)
        try:
            return loads(raw)
        except JSONDecodeError as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from exc

    def _run(self, endpoint: str, fn) -> None:
        # In-flight tracking lives here (not in handle_one_request) so an
        # idle keep-alive connection never counts against graceful drain.
        tracker = getattr(self.server, "track_request", None)
        if tracker is None:
            self._run_tracked(endpoint, fn)
        else:
            with tracker():
                self._run_tracked(endpoint, fn)

    def _run_tracked(self, endpoint: str, fn) -> None:
        # Latency from a monotonic clock (an NTP step must never yield a
        # negative sample), inside a server span that adopts the caller's
        # traceparent header — the cross-process link of a fleet trace.
        metrics = self.service.metrics
        metrics.request_started()
        start = perf_counter()
        try:
            with obs.span(
                f"server{endpoint}",
                parent=self.headers.get(obs.TRACEPARENT_HEADER),
                service=self.service.service_name,
                endpoint=endpoint,
            ):
                self._respond(endpoint, fn)
        finally:
            metrics.request_finished()
            metrics.record_request(endpoint, perf_counter() - start)

    def _respond(self, endpoint: str, fn) -> None:
        try:
            faults = self.service.faults
            if faults is not None:
                # kill/hang fire before any work: a killed worker leaves a
                # reset connection, a hung one blows the caller's deadline.
                faults.before(endpoint)
            # Compute the full body before sending anything: exactly one
            # response ever goes on the wire, so a handler failure cannot
            # corrupt a half-written 200 with a trailing 500.  ``fn`` may
            # return a plain dict (a 200 JSON body) or a WireReply carrying
            # its own status, headers and bytes/stream.
            try:
                result = fn()
                if isinstance(result, WireReply):
                    reply = result
                else:
                    reply = _json_reply(200, result)
            except RegistrationRejected as exc:
                self.service.metrics.record_error(endpoint)
                reply = _json_reply(
                    400, {"error": str(exc), "report": exc.report}
                )
            except ProtocolError as exc:
                self.service.metrics.record_error(endpoint)
                reply = _json_reply(400, {"error": str(exc)})
            except NotFoundError as exc:
                self.service.metrics.record_error(endpoint)
                reply = _json_reply(
                    404, {"error": str(exc.args[0] if exc.args else exc)}
                )
            except Exception as exc:  # noqa: BLE001 - the daemon must not die
                self.service.metrics.record_error(endpoint)
                reply = _json_reply(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            if faults is not None:
                reply = faults.mangle_reply(endpoint, reply)
            obs.set_attr("http.status", reply.status)
            self._send_reply(reply)
        except (ConnectionError, TimeoutError):
            # The client went away mid-send; nothing left to answer.
            pass

    def _not_found(self, method: str) -> None:
        self.service.metrics.record_error("404")
        try:
            self._send_json(
                404, {"error": f"no such endpoint: {method} {self.path}"}
            )
        except (ConnectionError, TimeoutError):
            pass  # scanner closed the socket mid-404; nothing to answer

    # -- routes --------------------------------------------------------------
    # Split into overridable ``_route_*`` predicates so subclasses (the
    # fleet coordinator's handler) can add endpoints without re-stating
    # the base routing table.
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if not self._route_get(self.path):
            self._not_found("GET")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if not self._route_post(self.path):
            self._not_found("POST")

    def _route_get(self, path: str) -> bool:
        if path == "/healthz":
            self._run("/healthz", self.service.healthz)
        elif path == "/readyz":
            self._run("/readyz", self.service.handle_readyz)
        elif path == "/metrics":
            self._run(
                "/metrics",
                lambda: self.service.metrics_reply(self.headers.get("Accept")),
            )
        elif path.startswith("/v1/trace/"):
            trace_id = path[len("/v1/trace/"):]
            self._run("/v1/trace", lambda: self.service.handle_trace(trace_id))
        elif path.startswith("/v1/schedule/"):
            digest = path[len("/v1/schedule/"):]
            self._run(
                "/v1/schedule", lambda: self.service.handle_schedule(digest)
            )
        elif path == "/v1/rollout":
            self._run("/v1/rollout", self.service.handle_rollout_status)
        else:
            return False
        return True

    def _route_post(self, path: str) -> bool:
        if path == "/v1/sweep":
            self._run(
                "/v1/sweep",
                lambda: self.service.handle_sweep_wire(
                    self._read_body(),
                    accept=self.headers.get("Accept"),
                    if_none_match=self.headers.get("If-None-Match"),
                ),
            )
        elif path == "/v1/optimize":
            self._run(
                "/v1/optimize",
                lambda: self.service.handle_optimize(self._read_body()),
            )
        elif path == "/v1/register":
            self._run(
                "/v1/register",
                lambda: self.service.handle_register(self._read_body()),
            )
        elif path == "/v1/report":
            self._run(
                "/v1/report",
                lambda: self.service.handle_report(self._read_body()),
            )
        elif path == "/v1/calibrate/propose":
            self._run(
                "/v1/calibrate/propose",
                lambda: self.service.handle_calibrate_propose(self._read_body()),
            )
        elif path == "/v1/rollout":
            self._run(
                "/v1/rollout",
                lambda: self.service.handle_rollout_action(self._read_body()),
            )
        else:
            return False
        return True


class _ServiceHTTPServer(ThreadingHTTPServer):
    """A threading server that can count — and drain — in-flight requests.

    ``track_request`` wraps each handled request (entered by
    ``_Handler._run``, so idle keep-alive connections don't count);
    ``drain`` blocks until the in-flight count reaches zero or the
    deadline passes — the SIGTERM graceful-shutdown path.
    """

    daemon_threads = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._inflight = 0
        self._inflight_cv = threading.Condition()

    @contextmanager
    def track_request(self):
        with self._inflight_cv:
            self._inflight += 1
        try:
            yield
        finally:
            with self._inflight_cv:
                self._inflight -= 1
                self._inflight_cv.notify_all()

    def inflight(self) -> int:
        with self._inflight_cv:
            return self._inflight

    def drain(self, deadline_s: float) -> bool:
        """Wait for in-flight requests to finish; False if any remained."""
        deadline = monotonic() + deadline_s
        with self._inflight_cv:
            while self._inflight > 0:
                remaining = deadline - monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cv.wait(remaining)
            return True


def make_server(
    service: TuningService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    handler_cls: type[_Handler] = _Handler,
) -> _ServiceHTTPServer:
    """Bind a threaded HTTP server for ``service``.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address[1]``.  One thread per connection: concurrent
    identical requests genuinely race into the single-flight layer.
    ``handler_cls`` lets the fleet coordinator extend the routing table.
    """
    handler = type("BoundHandler", (handler_cls,), {"service": service})
    return _ServiceHTTPServer((host, port), handler)


@contextmanager
def serve_background(
    service: TuningService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    factory=make_server,
):
    """Run a server on a background thread; yields its base URL.

    The in-process harness used by tests, benchmarks and the quickstart
    example — requests travel through real sockets and real threads.
    Pass ``factory=make_fleet_server`` to serve a coordinator.
    """
    server = factory(service, host, port)
    bound_host, bound_port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{bound_host}:{bound_port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
