"""Service observability: per-tier hit counters and latency percentiles.

The daemon resolves every sweep through a tier chain — bounded in-memory
cache, in-flight coalescing, persistent L2 store, cold evaluation — and
each request is attributed to exactly one tier.  ``GET /metrics`` serves a
snapshot of these counters plus p50/p95/p99 request latencies per
endpoint, which is how the load harness asserts "N concurrent identical
requests cost one evaluation".

Latencies are kept in a bounded ring (last :data:`WINDOW` samples per
endpoint): a long-lived daemon must not grow memory with request count,
and recent-window percentiles are the operationally useful ones anyway.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = [
    "ServiceMetrics",
    "FLEET_EVENTS",
    "RESOLVE_TIERS",
    "RESPONSE_KINDS",
    "REGISTRY_EVENTS",
]

#: Where a request's sweep was resolved, cheapest tier first.  ``delta``
#: counts requests whose exact digest missed L2 but whose payload was
#: rebuilt from a structural twin (a stored sweep of the same op shape at
#: different dim sizes) instead of a cold evaluation.
RESOLVE_TIERS = ("l1", "coalesced", "l2", "delta", "computed")

#: How a ``/v1/sweep`` response left the daemon: canonical JSON (the
#: default), the packed binary npz representation, or a 304 Not Modified
#: revalidation that carried no body at all.
RESPONSE_KINDS = ("json", "binary", "not_modified")

#: Schedule-registry lifecycle events the daemon counts: entries accepted
#: by ``/v1/register``, registrations rejected by validation, entries
#: served from ``/v1/schedule/<digest>``, and background-revalidation
#: verdicts per entry.
REGISTRY_EVENTS = (
    "registered",
    "rejected",
    "served",
    "revalidate_pass",
    "revalidate_fail",
)

#: Fleet coordination events: whole ``/v1/optimize_batch`` requests,
#: per-job outcomes (served by a worker vs. recovered on the local
#: engine), dispatch retries, and quarantine verdicts.  The chaos suite
#: asserts on these — a killed worker must show up as quarantine +
#: retry, never as a changed response body.
FLEET_EVENTS = (
    "batch",
    "job_remote",
    "job_local_fallback",
    "retry",
    "quarantine",
)

#: Latency samples retained per endpoint.
WINDOW = 4096


def _percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sample list."""
    if not sorted_samples:
        return 0.0
    idx = round(q * (len(sorted_samples) - 1))
    return sorted_samples[idx]


class ServiceMetrics:
    """Thread-safe counters and latency windows for one daemon."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.time()
        self._requests: dict[str, int] = {}
        self._errors: dict[str, int] = {}
        self._tiers: dict[str, int] = {tier: 0 for tier in RESOLVE_TIERS}
        self._responses: dict[str, int] = {kind: 0 for kind in RESPONSE_KINDS}
        self._latency: dict[str, deque[float]] = {}
        # Cold /v1/optimize phase breakdown: how much of each computed
        # response went into sweeping vs. configuration selection.
        self._optimize_runs = 0
        self._optimize_sweep_ms = 0.0
        self._optimize_select_ms = 0.0
        self._registry_events: dict[str, int] = {e: 0 for e in REGISTRY_EVENTS}
        self._last_revalidation: dict | None = None
        self._fleet_events: dict[str, int] = {e: 0 for e in FLEET_EVENTS}

    # -- recording -----------------------------------------------------------
    def record_request(self, endpoint: str, latency_s: float) -> None:
        with self._lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1
            window = self._latency.get(endpoint)
            if window is None:
                window = self._latency[endpoint] = deque(maxlen=WINDOW)
            window.append(latency_s * 1e3)

    def record_error(self, endpoint: str) -> None:
        with self._lock:
            self._errors[endpoint] = self._errors.get(endpoint, 0) + 1

    def record_tier(self, tier: str) -> None:
        if tier not in self._tiers:
            raise ValueError(f"unknown resolve tier {tier!r}; known: {RESOLVE_TIERS}")
        with self._lock:
            self._tiers[tier] += 1

    def record_response(self, kind: str) -> None:
        if kind not in self._responses:
            raise ValueError(f"unknown response kind {kind!r}; known: {RESPONSE_KINDS}")
        with self._lock:
            self._responses[kind] += 1

    def record_optimize_breakdown(self, sweep_s: float, select_s: float) -> None:
        """Attribute one cold ``/v1/optimize`` computation to its phases."""
        with self._lock:
            self._optimize_runs += 1
            self._optimize_sweep_ms += sweep_s * 1e3
            self._optimize_select_ms += select_s * 1e3

    def record_registry(self, event: str) -> None:
        if event not in self._registry_events:
            raise ValueError(
                f"unknown registry event {event!r}; known: {REGISTRY_EVENTS}"
            )
        with self._lock:
            self._registry_events[event] += 1

    def record_fleet(self, event: str) -> None:
        if event not in self._fleet_events:
            raise ValueError(
                f"unknown fleet event {event!r}; known: {FLEET_EVENTS}"
            )
        with self._lock:
            self._fleet_events[event] += 1

    def record_revalidation(self, summary: dict) -> None:
        """Remember the latest background-revalidation sweep's outcome."""
        with self._lock:
            self._last_revalidation = dict(summary)

    # -- reading -------------------------------------------------------------
    def registry_counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._registry_events)

    def fleet_counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._fleet_events)

    def tier_counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._tiers)

    def snapshot(self) -> dict:
        """One JSON-able view of everything (the ``/metrics`` body)."""
        with self._lock:
            latency = {}
            for endpoint, window in self._latency.items():
                samples = sorted(window)
                latency[endpoint] = {
                    "count": len(samples),
                    "p50_ms": _percentile(samples, 0.50),
                    "p95_ms": _percentile(samples, 0.95),
                    "p99_ms": _percentile(samples, 0.99),
                    "max_ms": samples[-1] if samples else 0.0,
                }
            runs = self._optimize_runs
            return {
                "uptime_s": time.time() - self._started,
                "requests": dict(self._requests),
                "errors": dict(self._errors),
                "resolve_tiers": dict(self._tiers),
                "responses": dict(self._responses),
                "latency_ms": latency,
                # Where cold /v1/optimize time goes: the sweep phase
                # (engine evaluation through the scheduler) vs. the
                # configuration-selection phase.
                "optimize_breakdown": {
                    "computed": runs,
                    "sweep_ms_total": self._optimize_sweep_ms,
                    "select_ms_total": self._optimize_select_ms,
                    "sweep_ms_avg": self._optimize_sweep_ms / runs if runs else 0.0,
                    "select_ms_avg": self._optimize_select_ms / runs if runs else 0.0,
                },
                "registry": {
                    "events": dict(self._registry_events),
                    "last_revalidation": self._last_revalidation,
                },
                "fleet": {"events": dict(self._fleet_events)},
            }
