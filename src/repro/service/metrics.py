"""Service observability: typed counters, latency windows, Prometheus text.

The daemon resolves every sweep through a tier chain — bounded in-memory
cache, in-flight coalescing, persistent L2 store, delta reconstruction,
cold evaluation — and each request is attributed to exactly one tier.
``GET /metrics`` serves a snapshot of these counters plus p50/p95/p99
request latencies per endpoint, which is how the load harness asserts "N
concurrent identical requests cost one evaluation".

Counters live in a typed :class:`repro.obs.metrics.MetricsRegistry`, so
the same recording path feeds two renderings: the JSON snapshot every
existing consumer reads, and the Prometheus text exposition served under
``Accept: text/plain`` (see ``repro.obs.metrics.wants_prometheus``).
Alongside the counters, each endpoint gets a fixed-bucket latency
*histogram* (aggregatable across a fleet, unlike percentiles) and an
in-flight-requests gauge.

Latencies are kept in a bounded ring (last :data:`WINDOW` samples per
endpoint): a long-lived daemon must not grow memory with request count,
and recent-window percentiles are the operationally useful ones anyway.
Windows are *copied* under the lock and sorted outside it — sorting 4096
samples per endpoint inside the global lock measurably stalled the
recording path whenever ``/metrics`` was scraped under load.  All
durations come from monotonic clocks (``time.perf_counter``): an NTP
step must never produce a negative latency sample or a jumped uptime.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_S, MetricsRegistry

__all__ = [
    "ServiceMetrics",
    "CALIBRATION_EVENTS",
    "FLEET_EVENTS",
    "RESOLVE_TIERS",
    "RESPONSE_KINDS",
    "REGISTRY_EVENTS",
]

#: Where a request's sweep was resolved, cheapest tier first.  ``delta``
#: counts requests whose exact digest missed L2 but whose payload was
#: rebuilt from a structural twin (a stored sweep of the same op shape at
#: different dim sizes) instead of a cold evaluation.
RESOLVE_TIERS = ("l1", "coalesced", "l2", "delta", "computed")

#: How a ``/v1/sweep`` response left the daemon: canonical JSON (the
#: default), the packed binary npz representation, or a 304 Not Modified
#: revalidation that carried no body at all.
RESPONSE_KINDS = ("json", "binary", "not_modified")

#: Schedule-registry lifecycle events the daemon counts: entries accepted
#: by ``/v1/register``, registrations rejected by validation, entries
#: served from ``/v1/schedule/<digest>``, and background-revalidation
#: verdicts per entry.
REGISTRY_EVENTS = (
    "registered",
    "rejected",
    "served",
    "revalidate_pass",
    "revalidate_fail",
)

#: Fleet coordination events: whole ``/v1/optimize_batch`` requests,
#: per-job outcomes (served by a worker vs. recovered on the local
#: engine), dispatch retries, and quarantine verdicts.  The chaos suite
#: asserts on these — a killed worker must show up as quarantine +
#: retry, never as a changed response body.
FLEET_EVENTS = (
    "batch",
    "job_remote",
    "job_local_fallback",
    "retry",
    "quarantine",
)

#: Calibration/rollout lifecycle events: accepted and rejected
#: ``/v1/report`` batches, shadow-gate verdicts, canary dual-scores and
#: the regression verdicts they produce, promotions and rollbacks.  The
#: rollout smoke suite asserts on these — a regressing candidate must
#: show up as ``canary_regression`` + ``rollback`` and *zero* changed
#: responses.
CALIBRATION_EVENTS = (
    "report",
    "report_rejected",
    "shadow_pass",
    "shadow_reject",
    "canary_request",
    "canary_regression",
    "promote",
    "rollback",
)

#: Latency samples retained per endpoint.
WINDOW = 4096


def _percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sample list."""
    if not sorted_samples:
        return 0.0
    idx = round(q * (len(sorted_samples) - 1))
    return sorted_samples[idx]


class ServiceMetrics:
    """Thread-safe counters and latency windows for one daemon.

    The JSON ``snapshot()`` shape is load-bearing (clients, the load
    harness, and the chaos suite all parse it); the typed registry
    underneath additionally renders the whole set as Prometheus text via
    :meth:`prometheus`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_mono = time.perf_counter()
        self._latency: dict[str, deque[float]] = {}
        self._last_revalidation: dict | None = None
        self._last_rollout: dict | None = None

        reg = self.registry = MetricsRegistry()
        self._requests = reg.counter(
            "repro_requests_total", "Requests served, by endpoint.",
            ("endpoint",),
        )
        self._errors = reg.counter(
            "repro_errors_total", "Error responses, by endpoint.",
            ("endpoint",),
        )
        self._tiers = reg.counter(
            "repro_resolve_tier_total",
            "Sweep resolutions, by tier (each request hits exactly one).",
            ("tier",),
        )
        self._responses = reg.counter(
            "repro_responses_total",
            "Sweep responses, by wire representation.",
            ("kind",),
        )
        self._registry_events = reg.counter(
            "repro_registry_events_total",
            "Schedule-registry lifecycle events.",
            ("event",),
        )
        self._fleet_events = reg.counter(
            "repro_fleet_events_total",
            "Fleet coordination events.",
            ("event",),
        )
        self._calibration_events = reg.counter(
            "repro_calibration_events_total",
            "Calibration feedback and rollout lifecycle events.",
            ("event",),
        )
        self._optimize_runs = reg.counter(
            "repro_optimize_runs_total",
            "Cold /v1/optimize computations.",
        )
        self._optimize_phase_ms = reg.counter(
            "repro_optimize_phase_ms_total",
            "Cold /v1/optimize time, by phase (sweep vs. selection), ms.",
            ("phase",),
        )
        self._latency_hist = reg.histogram(
            "repro_request_latency_seconds",
            "Request latency, by endpoint.",
            ("endpoint",),
            buckets=DEFAULT_LATENCY_BUCKETS_S,
        )
        self._inflight = reg.gauge(
            "repro_inflight_requests",
            "Requests currently being handled.",
        )
        self._inflight.set(0)  # render from the first scrape, not first request
        reg.gauge_callback(
            "repro_uptime_seconds",
            "Seconds since the daemon started (monotonic).",
            lambda: time.perf_counter() - self._started_mono,
        )
        # Fixed vocabularies render at zero from the first scrape: a
        # dashboard must distinguish "no quarantines" from "not exported".
        for tier in RESOLVE_TIERS:
            self._tiers.preset(tier)
        for kind in RESPONSE_KINDS:
            self._responses.preset(kind)
        for event in REGISTRY_EVENTS:
            self._registry_events.preset(event)
        for event in FLEET_EVENTS:
            self._fleet_events.preset(event)
        for event in CALIBRATION_EVENTS:
            self._calibration_events.preset(event)
        self._optimize_runs.preset()
        self._optimize_phase_ms.preset("sweep")
        self._optimize_phase_ms.preset("select")

    # -- recording -----------------------------------------------------------
    def record_request(self, endpoint: str, latency_s: float) -> None:
        self._requests.inc(endpoint=endpoint)
        self._latency_hist.observe(latency_s, endpoint=endpoint)
        with self._lock:
            window = self._latency.get(endpoint)
            if window is None:
                window = self._latency[endpoint] = deque(maxlen=WINDOW)
            window.append(latency_s * 1e3)

    def record_error(self, endpoint: str) -> None:
        self._errors.inc(endpoint=endpoint)

    def record_tier(self, tier: str) -> None:
        if tier not in RESOLVE_TIERS:
            raise ValueError(f"unknown resolve tier {tier!r}; known: {RESOLVE_TIERS}")
        self._tiers.inc(tier=tier)

    def record_response(self, kind: str) -> None:
        if kind not in RESPONSE_KINDS:
            raise ValueError(f"unknown response kind {kind!r}; known: {RESPONSE_KINDS}")
        self._responses.inc(kind=kind)

    def record_optimize_breakdown(self, sweep_s: float, select_s: float) -> None:
        """Attribute one cold ``/v1/optimize`` computation to its phases."""
        self._optimize_runs.inc()
        self._optimize_phase_ms.inc(sweep_s * 1e3, phase="sweep")
        self._optimize_phase_ms.inc(select_s * 1e3, phase="select")

    def record_registry(self, event: str) -> None:
        if event not in REGISTRY_EVENTS:
            raise ValueError(
                f"unknown registry event {event!r}; known: {REGISTRY_EVENTS}"
            )
        self._registry_events.inc(event=event)

    def record_fleet(self, event: str) -> None:
        if event not in FLEET_EVENTS:
            raise ValueError(
                f"unknown fleet event {event!r}; known: {FLEET_EVENTS}"
            )
        self._fleet_events.inc(event=event)

    def record_revalidation(self, summary: dict) -> None:
        """Remember the latest background-revalidation sweep's outcome."""
        with self._lock:
            self._last_revalidation = dict(summary)

    def record_calibration(self, event: str) -> None:
        if event not in CALIBRATION_EVENTS:
            raise ValueError(
                f"unknown calibration event {event!r}; known: {CALIBRATION_EVENTS}"
            )
        self._calibration_events.inc(event=event)

    def record_rollout(self, status: dict) -> None:
        """Remember the rollout state machine's latest status snapshot."""
        with self._lock:
            self._last_rollout = dict(status)

    def request_started(self) -> None:
        self._inflight.inc()

    def request_finished(self) -> None:
        self._inflight.dec()

    # -- reading -------------------------------------------------------------
    @staticmethod
    def _by_label(counter) -> dict[str, int | float]:
        return {key[0]: value for key, value in counter.items()}

    def registry_counts(self) -> dict[str, int]:
        counts = self._by_label(self._registry_events)
        return {event: counts.get(event, 0) for event in REGISTRY_EVENTS}

    def fleet_counts(self) -> dict[str, int]:
        counts = self._by_label(self._fleet_events)
        return {event: counts.get(event, 0) for event in FLEET_EVENTS}

    def calibration_counts(self) -> dict[str, int]:
        counts = self._by_label(self._calibration_events)
        return {event: counts.get(event, 0) for event in CALIBRATION_EVENTS}

    def tier_counts(self) -> dict[str, int]:
        counts = self._by_label(self._tiers)
        return {tier: counts.get(tier, 0) for tier in RESOLVE_TIERS}

    def inflight(self) -> int | float:
        return self._inflight.value()

    def prometheus(self) -> str:
        """The Prometheus text exposition of every registered metric."""
        return self.registry.render()

    def snapshot(self) -> dict:
        """One JSON-able view of everything (the ``/metrics`` body)."""
        # Copy each ring under the lock; sort outside it.  Sorting 4096
        # floats per endpoint while holding the recording lock stalls
        # every handler thread for the duration of the scrape.
        with self._lock:
            windows = {
                endpoint: list(window)
                for endpoint, window in self._latency.items()
            }
            last_revalidation = self._last_revalidation
            last_rollout = self._last_rollout
        latency = {}
        for endpoint, samples in windows.items():
            samples.sort()
            latency[endpoint] = {
                "count": len(samples),
                "p50_ms": _percentile(samples, 0.50),
                "p95_ms": _percentile(samples, 0.95),
                "p99_ms": _percentile(samples, 0.99),
                "max_ms": samples[-1] if samples else 0.0,
            }
        runs = self._optimize_runs.value()
        phase_ms = self._by_label(self._optimize_phase_ms)
        sweep_ms = phase_ms.get("sweep", 0.0) or 0.0
        select_ms = phase_ms.get("select", 0.0) or 0.0
        responses = self._by_label(self._responses)
        return {
            "uptime_s": time.perf_counter() - self._started_mono,
            "inflight": self.inflight(),
            "requests": self._by_label(self._requests),
            "errors": self._by_label(self._errors),
            "resolve_tiers": self.tier_counts(),
            "responses": {
                kind: responses.get(kind, 0) for kind in RESPONSE_KINDS
            },
            "latency_ms": latency,
            # Where cold /v1/optimize time goes: the sweep phase (engine
            # evaluation through the scheduler) vs. the
            # configuration-selection phase.
            "optimize_breakdown": {
                "computed": runs,
                "sweep_ms_total": float(sweep_ms),
                "select_ms_total": float(select_ms),
                "sweep_ms_avg": sweep_ms / runs if runs else 0.0,
                "select_ms_avg": select_ms / runs if runs else 0.0,
            },
            "registry": {
                "events": self.registry_counts(),
                "last_revalidation": last_revalidation,
            },
            "fleet": {"events": self.fleet_counts()},
            "calibration": {
                "events": self.calibration_counts(),
                "rollout": last_rollout,
            },
        }
