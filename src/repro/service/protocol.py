"""The service wire protocol: canonical JSON requests and responses.

The request schema deliberately mirrors the canonicalization of
:func:`repro.engine.store.sweep_digest`: a ``/v1/sweep`` request carries an
operator signature, the dim sizes it reads, a :class:`GPUSpec` and the
sampling knobs — exactly the tuple the L2 store digests.  ``op_from_wire``
rebuilds a real :class:`OpSpec` from the wire form, so the server keys its
caches with the *store's own* digest function; the wire key and the store
key are the same object, and a request served over HTTP hits the same
``.npz`` entry a batch ``sweep_graph`` run would have written.

Responses are built through :func:`sweep_response_from_sweep`, a pure
function of a :class:`~repro.autotuner.tuner.SweepResult` — the server
feeds it engine sweeps, tests feed it scalar
:func:`~repro.autotuner.tuner.sweep_op_reference` sweeps, and because the
engine is bit-identical to the reference the resulting
:func:`canonical_json_bytes` are equal byte for byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.hardware.params import active_cost_model_version
from repro.hardware.spec import A100, V100, GPUSpec
from repro.ir.dims import DimEnv, bert_large_dims
from repro.ir.graph import DataflowGraph
from repro.ir.iteration_space import IterationSpace
from repro.ir.operator import OpClass, OpSpec
from repro.ir.tensor import TensorSpec
from repro.ir.dtypes import FP16, FP32, FP64, DType
from repro.layouts.config import OpConfig

__all__ = [
    "BINARY_CONTENT_TYPE",
    "PROTOCOL_VERSION",
    "OptimizeRequest",
    "ProtocolError",
    "SweepRequest",
    "accepts_packed",
    "canonical_json_bytes",
    "etag_matches",
    "fleet_heartbeat_wire",
    "fleet_register_wire",
    "parse_fleet_heartbeat",
    "parse_fleet_register",
    "payload_from_packed",
    "sweep_etag",
    "config_to_wire",
    "gpu_from_wire",
    "gpu_to_wire",
    "measurement_to_wire",
    "op_from_wire",
    "op_to_wire",
    "optimize_request_digest",
    "optimize_request_wire",
    "optimize_response_from_sweeps",
    "parse_optimize_request",
    "parse_sweep_request",
    "selection_to_wire",
    "sweep_request_digest",
    "sweep_request_wire",
    "sweep_response_from_sweep",
]

#: Wire schema version; embedded in every request and response.
PROTOCOL_VERSION = 1

#: Media type of the packed binary ``/v1/sweep`` representation: the wire
#: bytes are exactly the L2 store's ``.npz`` payload file, so a server with
#: a warm store streams the response zero-copy from disk and the client
#: decodes it with the store's own reader.
BINARY_CONTENT_TYPE = "application/x-repro-npz"

#: Default number of ranked configurations returned by ``/v1/sweep``.
DEFAULT_TOP_K = 3
MAX_TOP_K = 50

#: Default sampled-config caps when a request omits ``cap`` — the same
#: values the client builders and the CLI use, so a hand-written body and a
#: client-built one land on the same cache keys.
DEFAULT_SWEEP_CAP = 2000
DEFAULT_OPTIMIZE_CAP = 400

#: Graph builders servable by ``/v1/optimize``.
OPTIMIZE_MODELS = ("mha", "encoder", "decoder")

_DTYPES: dict[str, DType] = {d.name: d for d in (FP16, FP32, FP64)}
_NAMED_GPUS: dict[str, GPUSpec] = {"V100": V100, "A100": A100}


class ProtocolError(ValueError):
    """A malformed or unserviceable request body (HTTP 400)."""


def canonical_json_bytes(obj) -> bytes:
    """The one serialization every response uses: sorted keys, no spaces.

    Determinism matters: concurrent clients of one digest must receive
    byte-identical payloads (pinned by the load benchmark).
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()


# ---------------------------------------------------------------------------
# Wire forms of the IR pieces a sweep reads
# ---------------------------------------------------------------------------

def _require(mapping: dict, key: str, where: str):
    if not isinstance(mapping, dict):
        raise ProtocolError(f"{where} must be a JSON object, got {type(mapping).__name__}")
    if key not in mapping:
        raise ProtocolError(f"{where} is missing required field {key!r}")
    return mapping[key]


def _str_tuple(value, where: str) -> tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(x, str) for x in value
    ):
        raise ProtocolError(f"{where} must be a list of strings")
    return tuple(value)


def tensor_to_wire(t: TensorSpec) -> dict:
    return {
        "name": t.name,
        "dims": list(t.dims),
        "dtype": t.dtype.name,
        "is_param": t.is_param,
    }


def tensor_from_wire(wire: dict, where: str = "tensor") -> TensorSpec:
    dtype_name = wire.get("dtype", FP16.name)
    dtype = _DTYPES.get(dtype_name)
    if dtype is None:
        raise ProtocolError(
            f"{where}: unknown dtype {dtype_name!r}; known: {sorted(_DTYPES)}"
        )
    try:
        return TensorSpec(
            name=_require(wire, "name", where),
            dims=_str_tuple(_require(wire, "dims", where), f"{where}.dims"),
            dtype=dtype,
            is_param=bool(wire.get("is_param", False)),
        )
    except ProtocolError:
        raise
    except ValueError as exc:
        raise ProtocolError(f"{where}: {exc}") from exc


def op_to_wire(op: OpSpec) -> dict:
    """Serialize the sweep-relevant structure of one operator.

    ``stage``, ``fused_from`` and ``kernel_label`` never reach the cost
    model (they are excluded from the store digest for the same reason)
    and are not carried on the wire.
    """
    wire = {
        "name": op.name,
        "class": op.op_class.value,
        "inputs": [tensor_to_wire(t) for t in op.inputs],
        "outputs": [tensor_to_wire(t) for t in op.outputs],
        "independent": list(op.ispace.independent),
        "reduction": list(op.ispace.reduction),
        "flop_per_point": op.flop_per_point,
        "is_view": op.is_view,
    }
    if op.einsum is not None:
        wire["einsum"] = op.einsum
    if op.members:
        wire["members"] = [op_to_wire(m) for m in op.members]
    return wire


def op_from_wire(wire: dict, where: str = "op") -> OpSpec:
    """Rebuild an :class:`OpSpec` from its wire form.

    The round trip preserves every field the store digest reads, so
    ``sweep_digest(op_from_wire(op_to_wire(op)), ...) == sweep_digest(op,
    ...)`` — the protocol's central invariant (pinned in tests).
    """
    class_value = _require(wire, "class", where)
    try:
        op_class = OpClass(class_value)
    except ValueError:
        raise ProtocolError(
            f"{where}: unknown operator class {class_value!r}; "
            f"known: {sorted(c.value for c in OpClass)}"
        ) from None
    einsum = wire.get("einsum")
    if einsum is not None and not isinstance(einsum, str):
        raise ProtocolError(f"{where}.einsum must be a string")
    members = wire.get("members", [])
    if not isinstance(members, list):
        raise ProtocolError(f"{where}.members must be a list")
    try:
        return OpSpec(
            name=_require(wire, "name", where),
            op_class=op_class,
            inputs=tuple(
                tensor_from_wire(t, f"{where}.inputs[{i}]")
                for i, t in enumerate(_require(wire, "inputs", where))
            ),
            outputs=tuple(
                tensor_from_wire(t, f"{where}.outputs[{i}]")
                for i, t in enumerate(_require(wire, "outputs", where))
            ),
            ispace=IterationSpace(
                independent=_str_tuple(
                    _require(wire, "independent", where), f"{where}.independent"
                ),
                reduction=_str_tuple(
                    wire.get("reduction", ()), f"{where}.reduction"
                ),
            ),
            flop_per_point=float(wire.get("flop_per_point", 1.0)),
            einsum=einsum,
            is_view=bool(wire.get("is_view", False)),
            members=tuple(
                op_from_wire(m, f"{where}.members[{i}]")
                for i, m in enumerate(members)
            ),
        )
    except ProtocolError:
        raise
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"{where}: {exc}") from exc


def gpu_to_wire(gpu: GPUSpec) -> dict:
    wire = asdict(gpu)
    wire["gemm_tile"] = list(gpu.gemm_tile)
    return wire


def gpu_from_wire(wire, where: str = "gpu") -> GPUSpec:
    """A GPU from the wire: a known name (``"V100"``) or a full spec."""
    if wire is None:
        return V100
    if isinstance(wire, str):
        spec = _NAMED_GPUS.get(wire)
        if spec is None:
            raise ProtocolError(
                f"{where}: unknown GPU name {wire!r}; known: {sorted(_NAMED_GPUS)}"
            )
        return spec
    if not isinstance(wire, dict):
        raise ProtocolError(f"{where} must be a GPU name or a spec object")
    fields = dict(wire)
    if "gemm_tile" in fields:
        tile = fields["gemm_tile"]
        if not isinstance(tile, (list, tuple)) or len(tile) != 2:
            raise ProtocolError(f"{where}.gemm_tile must be a [rows, cols] pair")
        fields["gemm_tile"] = (int(tile[0]), int(tile[1]))
    try:
        return GPUSpec(**fields)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"{where}: {exc}") from exc


def _dims_from_wire(wire, where: str = "dims") -> DimEnv:
    if not isinstance(wire, dict) or not wire:
        raise ProtocolError(f"{where} must be a non-empty object of dim sizes")
    try:
        return DimEnv({str(k): v for k, v in wire.items()})
    except ValueError as exc:
        raise ProtocolError(f"{where}: {exc}") from exc


def _parse_cap(body: dict, *, default: int) -> int | None:
    cap = body.get("cap", default)
    if cap is None:
        return None
    if not isinstance(cap, int) or isinstance(cap, bool) or cap <= 0:
        raise ProtocolError("cap must be a positive integer or null")
    return cap


def _parse_seed(body: dict) -> int:
    seed = body.get("seed", 0x5EED)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ProtocolError("seed must be an integer")
    return seed


# ---------------------------------------------------------------------------
# /v1/sweep
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepRequest:
    """A parsed, validated ``POST /v1/sweep`` body."""

    op: OpSpec
    env: DimEnv
    gpu: GPUSpec
    cap: int | None
    seed: int
    top_k: int


def sweep_request_wire(
    op: OpSpec,
    env: DimEnv,
    gpu: GPUSpec = V100,
    *,
    cap: int | None = DEFAULT_SWEEP_CAP,
    seed: int = 0x5EED,
    top_k: int = DEFAULT_TOP_K,
) -> dict:
    """Client-side builder of a ``/v1/sweep`` body."""
    return {
        "protocol": PROTOCOL_VERSION,
        "op": op_to_wire(op),
        "dims": dict(env),
        "gpu": gpu_to_wire(gpu),
        "cap": cap,
        "seed": seed,
        "top_k": top_k,
    }


def parse_sweep_request(body: dict) -> SweepRequest:
    if not isinstance(body, dict):
        raise ProtocolError("request body must be a JSON object")
    protocol = body.get("protocol", PROTOCOL_VERSION)
    if protocol != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {protocol!r}; "
            f"this server speaks {PROTOCOL_VERSION}"
        )
    op = op_from_wire(_require(body, "op", "request"))
    if op.is_view:
        raise ProtocolError("view operators have no configurations to sweep")
    env = _dims_from_wire(_require(body, "dims", "request"))
    missing = sorted(_op_dims(op) - set(env))
    if missing:
        raise ProtocolError(f"dims is missing sizes for {missing}")
    top_k = body.get("top_k", DEFAULT_TOP_K)
    if not isinstance(top_k, int) or isinstance(top_k, bool) or top_k < 1:
        raise ProtocolError("top_k must be a positive integer")
    return SweepRequest(
        op=op,
        env=env,
        gpu=gpu_from_wire(body.get("gpu")),
        cap=_parse_cap(body, default=DEFAULT_SWEEP_CAP),
        seed=_parse_seed(body),
        top_k=min(top_k, MAX_TOP_K),
    )


def _op_dims(op: OpSpec) -> set[str]:
    from repro.engine.store import _op_dims as _store_op_dims

    return _store_op_dims(op)


def sweep_request_digest(req: SweepRequest) -> str:
    """The cache key of one sweep request — the store's own digest.

    This is the whole point of the protocol design: the wire key *is* the
    L2 store key, so the daemon, the CLI and the nightly benchmarks all
    share one content-addressed namespace.
    """
    from repro.engine.store import sweep_digest

    return sweep_digest(req.op, req.env, req.gpu, cap=req.cap, seed=req.seed)


# ---------------------------------------------------------------------------
# /v1/optimize
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OptimizeRequest:
    """A parsed, validated ``POST /v1/optimize`` body."""

    model: str
    qkv_fusion: str
    include_backward: bool
    fused: bool
    env: DimEnv
    gpu: GPUSpec
    cap: int | None
    seed: int


def optimize_request_wire(
    *,
    model: str = "encoder",
    qkv_fusion: str = "qkv",
    include_backward: bool = True,
    fused: bool = True,
    env: DimEnv | None = None,
    gpu: GPUSpec = V100,
    cap: int | None = DEFAULT_OPTIMIZE_CAP,
    seed: int = 0x5EED,
) -> dict:
    """Client-side builder of a ``/v1/optimize`` body."""
    return {
        "protocol": PROTOCOL_VERSION,
        "model": model,
        "qkv_fusion": qkv_fusion,
        "include_backward": include_backward,
        "fused": fused,
        "dims": dict(env if env is not None else bert_large_dims()),
        "gpu": gpu_to_wire(gpu),
        "cap": cap,
        "seed": seed,
    }


def parse_optimize_request(body: dict) -> OptimizeRequest:
    if not isinstance(body, dict):
        raise ProtocolError("request body must be a JSON object")
    protocol = body.get("protocol", PROTOCOL_VERSION)
    if protocol != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {protocol!r}; "
            f"this server speaks {PROTOCOL_VERSION}"
        )
    model = body.get("model", "encoder")
    if model not in OPTIMIZE_MODELS:
        raise ProtocolError(
            f"unknown model {model!r}; known: {list(OPTIMIZE_MODELS)}"
        )
    qkv_fusion = body.get("qkv_fusion", "qkv")
    if qkv_fusion not in ("unfused", "qk", "qkv"):
        raise ProtocolError(
            f"unknown qkv_fusion {qkv_fusion!r}; known: ['unfused', 'qk', 'qkv']"
        )
    dims = body.get("dims")
    if dims is None:
        env = bert_large_dims()
    else:
        env = _dims_from_wire(dims)
    return OptimizeRequest(
        model=model,
        qkv_fusion=qkv_fusion,
        include_backward=bool(body.get("include_backward", True)),
        fused=bool(body.get("fused", True)),
        env=env,
        gpu=gpu_from_wire(body.get("gpu")),
        cap=_parse_cap(body, default=DEFAULT_OPTIMIZE_CAP),
        seed=_parse_seed(body),
    )


def build_request_graph(req: OptimizeRequest) -> DataflowGraph:
    """Materialize the dataflow graph an optimize request names."""
    from repro.fusion import apply_paper_fusion
    from repro.transformer.graph_builder import (
        build_encoder_graph,
        build_gpt_decoder_graph,
        build_mha_graph,
    )

    builders = {
        "mha": build_mha_graph,
        "encoder": build_encoder_graph,
        "decoder": build_gpt_decoder_graph,
    }
    graph = builders[req.model](
        qkv_fusion=req.qkv_fusion, include_backward=req.include_backward
    )
    missing = sorted(
        {d for op in graph.ops for d in _op_dims(op)} - set(req.env)
    )
    if missing:
        raise ProtocolError(f"dims is missing sizes for {missing}")
    if req.fused:
        graph = apply_paper_fusion(graph, req.env)
    return graph


def optimize_request_digest(req: OptimizeRequest) -> str:
    """Stable coalescing/cache key of one optimize request.

    Sweep-level reuse already happens through the store digests; this key
    only needs to identify the *whole response*, so it hashes the parsed
    request (not the raw body — unknown fields and key order don't split
    the cache) plus the *served* cost-model version, so a calibration
    promotion atomically orphans every cached optimize response.
    """
    key = {
        "kind": "optimize",
        "protocol": PROTOCOL_VERSION,
        "version": active_cost_model_version(),
        "model": req.model,
        "qkv_fusion": req.qkv_fusion,
        "include_backward": req.include_backward,
        "fused": req.fused,
        "env": sorted(req.env.items()),
        "gpu": gpu_to_wire(req.gpu),
        "cap": req.cap,
        "seed": req.seed,
    }
    return hashlib.sha256(canonical_json_bytes(key)).hexdigest()


# ---------------------------------------------------------------------------
# Fleet membership: /v1/fleet/register and /v1/fleet/heartbeat
# ---------------------------------------------------------------------------

def _parse_member_version(body: dict, where: str) -> int | str | None:
    """The cost-model version a fleet member claims to serve.

    Optional (older workers omit it — reported as ``None``, which the
    coordinator surfaces as unknown skew); when present it must be an int
    or a non-empty string tag such as ``"1-cal-<digest12>"``.
    """
    version = body.get("cost_model_version")
    if version is None:
        return None
    if isinstance(version, bool) or not isinstance(version, (int, str)):
        raise ProtocolError(
            f"{where}.cost_model_version must be an integer or string tag"
        )
    if isinstance(version, str) and not version:
        raise ProtocolError(f"{where}.cost_model_version must be non-empty")
    return version


def fleet_register_wire(
    *,
    worker_id: str,
    url: str,
    ready: bool = False,
    cost_model_version: int | str | None = None,
) -> dict:
    """Client-side builder of a ``/v1/fleet/register`` body.

    ``cost_model_version`` defaults to the process-active served version so
    the coordinator can report fleet-wide version skew.
    """
    if cost_model_version is None:
        cost_model_version = active_cost_model_version()
    return {
        "protocol": PROTOCOL_VERSION,
        "worker_id": worker_id,
        "url": url,
        "ready": ready,
        "cost_model_version": cost_model_version,
    }


def parse_fleet_register(body: dict) -> tuple[str, str, bool, int | str | None]:
    """Validate a register body into ``(worker_id, url, ready, version)``."""
    worker_id = _require(body, "worker_id", "register")
    if not isinstance(worker_id, str) or not worker_id:
        raise ProtocolError("worker_id must be a non-empty string")
    url = _require(body, "url", "register")
    if not isinstance(url, str) or not url.startswith(("http://", "https://")):
        raise ProtocolError(f"url must be an http(s) URL, got {url!r}")
    return (
        worker_id,
        url.rstrip("/"),
        bool(body.get("ready", False)),
        _parse_member_version(body, "register"),
    )


def fleet_heartbeat_wire(
    *,
    worker_id: str,
    ready: bool,
    cost_model_version: int | str | None = None,
) -> dict:
    """Client-side builder of a ``/v1/fleet/heartbeat`` body."""
    if cost_model_version is None:
        cost_model_version = active_cost_model_version()
    return {
        "protocol": PROTOCOL_VERSION,
        "worker_id": worker_id,
        "ready": ready,
        "cost_model_version": cost_model_version,
    }


def parse_fleet_heartbeat(body: dict) -> tuple[str, bool, int | str | None]:
    """Validate a heartbeat body into ``(worker_id, ready, version)``."""
    worker_id = _require(body, "worker_id", "heartbeat")
    if not isinstance(worker_id, str) or not worker_id:
        raise ProtocolError("worker_id must be a non-empty string")
    return (
        worker_id,
        bool(body.get("ready", False)),
        _parse_member_version(body, "heartbeat"),
    )


# ---------------------------------------------------------------------------
# ETag revalidation and the packed binary representation
# ---------------------------------------------------------------------------

def sweep_etag(digest: str, *, top_k: int | None = None) -> str:
    """The strong entity tag of one ``/v1/sweep`` representation.

    The sweep digest already content-addresses the full measurement set,
    but the *JSON body* also depends on ``top_k`` (it truncates the ranked
    list), so the JSON tag carries it; the packed binary body is the whole
    payload regardless of ``top_k``, so its tag is the bare digest.
    """
    if top_k is None:
        return f'"{digest}"'
    return f'"{digest}.k{top_k}"'


def etag_matches(if_none_match: str | None, etag: str) -> bool:
    """RFC 7232 ``If-None-Match`` evaluation against one strong ETag.

    Accepts ``*``, comma-separated candidate lists, and weak-comparison
    ``W/`` prefixes (a weak tag matches its strong twin under the
    weak-comparison rules 304 revalidation uses).
    """
    if not if_none_match:
        return False
    if if_none_match.strip() == "*":
        return True
    for candidate in if_none_match.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


def accepts_packed(accept: str | None) -> bool:
    """Whether an ``Accept`` header opts into the packed binary response."""
    if not accept:
        return False
    return any(
        part.split(";", 1)[0].strip().lower() == BINARY_CONTENT_TYPE
        for part in accept.split(",")
    )


def payload_from_packed(data: bytes, *, digest: str | None = None) -> dict:
    """Decode and validate one packed ``/v1/sweep`` response body.

    The bytes are an L2 store ``.npz`` file; this runs the store's own
    deserializer *and* its structural validation (bounds-checked index
    arrays, digest agreement when ``digest`` is given), so a corrupt or
    truncated wire body surfaces as :class:`ProtocolError` — never as a
    silently wrong measurement downstream.
    """
    import io

    from repro.autotuner.cache import CacheMismatch
    from repro.engine.store import _validate_payload, read_payload_npz

    try:
        payload = read_payload_npz(io.BytesIO(data))
        _validate_payload(payload, digest, "<packed response>")
    except CacheMismatch as exc:
        raise ProtocolError(f"packed sweep response failed validation: {exc}") from exc
    except ProtocolError:
        raise
    except Exception as exc:  # zipfile/json/numpy decode failures
        raise ProtocolError(f"packed sweep response is not a payload npz: {exc}") from exc
    return payload


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------

def config_to_wire(config: OpConfig) -> dict:
    return {
        "op": config.op_name,
        "input_layouts": [list(l.dims) for l in config.input_layouts],
        "output_layouts": [list(l.dims) for l in config.output_layouts],
        "vector_dim": config.vector_dim,
        "warp_reduce_dim": config.warp_reduce_dim,
        "algorithm": config.algorithm,
        "use_tensor_cores": config.use_tensor_cores,
    }


def measurement_to_wire(m) -> dict:
    """One ranked configuration with its predicted time split."""
    return {
        "config": config_to_wire(m.config),
        "compute_us": m.time.compute_us,
        "memory_us": m.time.memory_us,
        "launch_us": m.time.launch_us,
        "total_us": m.time.total_us,
    }


def sweep_response_from_sweep(sweep, *, digest: str, top_k: int) -> dict:
    """The ``/v1/sweep`` response body, as a pure function of a sweep.

    Takes any :class:`~repro.autotuner.tuner.SweepResult` — an engine
    sweep, a store round-trip, or a scalar reference sweep — and produces
    the identical structure, which is how the byte-identity acceptance
    test is phrased.
    """
    k = min(top_k, sweep.num_configs)
    return {
        "protocol": PROTOCOL_VERSION,
        "cost_model_version": active_cost_model_version(),
        "digest": digest,
        "op": sweep.op.name,
        "num_configs": sweep.num_configs,
        "best": measurement_to_wire(sweep.best),
        "top": [measurement_to_wire(sweep.measurements[i]) for i in range(k)],
        "quantiles_us": {
            "p50": sweep.quantile_us(0.5),
            "p90": sweep.quantile_us(0.9),
            "worst": sweep.worst.total_us,
        },
    }


def selection_to_wire(selection) -> dict:
    """Wire form of a :class:`~repro.configsel.selector.SelectedConfiguration`.

    Deterministic: chain and transposes are emitted in selection order, the
    chosen map keys by op name (canonical JSON sorts them).
    """
    return {
        "chain": [s.op_name for s in selection.chain],
        "chain_cost_us": selection.chain_cost_us,
        "total_us": selection.total_us,
        "transpose_us": selection.transpose_us,
        "transposes": [
            {
                "tensor": t.tensor,
                "from_layout": list(t.from_layout.dims),
                "to_layout": list(t.to_layout.dims),
                "time_us": t.time_us,
                "before_op": t.before_op,
            }
            for t in selection.transposes
        ],
        "chosen": {
            name: measurement_to_wire(m) for name, m in selection.chosen.items()
        },
    }


def optimize_response_from_sweeps(
    graph: DataflowGraph, sweeps: dict, *, digest: str, selection=None
) -> dict:
    """The ``/v1/optimize`` response: the tuned schedule, op by op.

    Kernel order is graph order, so the body is deterministic and the
    canonical serialization is byte-stable across servers and runs.
    ``selection`` (a ``SelectedConfiguration``, optional) adds the global
    layout assignment — the end-to-end Sec. VI-A result — under
    ``"selection"``; ``None`` when selection was not run or not possible
    for the requested graph.
    """
    kernels = []
    forward_us = 0.0
    backward_us = 0.0
    for op in graph.ops:
        if op.is_view:
            continue
        sweep = sweeps[op.name]
        best = sweep.best
        kernels.append(
            {
                "op": op.name,
                "class": op.op_class.value,
                "stage": op.stage.value,
                "kernel_label": op.kernel_label,
                "num_configs": sweep.num_configs,
                "best": measurement_to_wire(best),
            }
        )
        if op.stage.is_backward:
            backward_us += best.total_us
        else:
            forward_us += best.total_us
    return {
        "protocol": PROTOCOL_VERSION,
        "cost_model_version": active_cost_model_version(),
        "digest": digest,
        "graph": graph.name,
        "num_kernels": len(kernels),
        "kernels": kernels,
        "forward_us": forward_us,
        "backward_us": backward_us,
        "total_us": forward_us + backward_us,
        "selection": None if selection is None else selection_to_wire(selection),
    }
