"""Consistent hashing of sweep digests onto worker daemons.

The wire key of a sweep request *is* the L2 store digest (a SHA-256 hex
string), so routing needs no extra canonicalization: hashing the digest
onto a ring of worker virtual nodes assigns every sweep a stable home
worker, and structurally identical requests land on the same worker's
warm caches no matter which coordinator routes them.

The ring is deterministic in the strong sense the fleet's
retry-with-exclusion depends on:

* membership is a pure function of the node ids — two coordinators that
  know the same workers build bit-identical rings;
* removing (or excluding) a node reassigns *only that node's* keys, each
  to the next node clockwise — every other key keeps its home, so a
  worker coming back from quarantine reclaims exactly the keys it owned
  before;
* :meth:`preference` yields the full failover order for a key, which is
  what the coordinator walks when its first choice is quarantined.

Virtual nodes (``replicas`` points per worker) smooth the key
distribution; 64 is plenty for fleets of a handful of daemons.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Iterator

__all__ = ["DEFAULT_REPLICAS", "HashRing"]

#: Virtual nodes per worker.  More replicas → smoother key distribution
#: at slightly higher ring-build cost (``replicas`` SHA-256 hashes/node).
DEFAULT_REPLICAS = 64


def _point(data: str) -> int:
    """One position on the 64-bit ring (the first 8 digest bytes)."""
    return int.from_bytes(hashlib.sha256(data.encode()).digest()[:8], "big")


class HashRing:
    """A consistent hash ring over string node ids.

    Not thread-safe by itself: the coordinator rebuilds a ring per
    registry generation under its own lock and only *reads* it
    concurrently (reads never mutate).
    """

    def __init__(
        self, nodes: Iterable[str] = (), *, replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        self._points: list[int] = []
        # point -> sorted claimant node ids.  A 64-bit point collision
        # between two nodes is a ~2**-64 event, but resolving it by the
        # lexicographically first claimant keeps the ring a pure function
        # of membership (insertion order can never matter).
        self._owners: dict[int, list[str]] = {}
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # -- membership -----------------------------------------------------------
    def _node_points(self, node: str) -> list[int]:
        return [_point(f"{node}#{i}") for i in range(self.replicas)]

    def add(self, node: str) -> bool:
        """Add ``node``; returns False if it was already on the ring."""
        if not node:
            raise ValueError("node id must be a non-empty string")
        if node in self._nodes:
            return False
        self._nodes.add(node)
        for p in self._node_points(node):
            claimants = self._owners.setdefault(p, [])
            if not claimants:
                bisect.insort(self._points, p)
            bisect.insort(claimants, node)
        return True

    def remove(self, node: str) -> bool:
        """Remove ``node``; every other node's keys are untouched."""
        if node not in self._nodes:
            return False
        self._nodes.discard(node)
        for p in self._node_points(node):
            claimants = self._owners[p]
            claimants.remove(node)
            if not claimants:
                del self._owners[p]
                del self._points[bisect.bisect_left(self._points, p)]
        return True

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    # -- lookup ----------------------------------------------------------------
    def iter_preference(
        self, key: str, *, exclude: frozenset[str] | set[str] = frozenset()
    ) -> Iterator[str]:
        """Distinct nodes in failover order for ``key``, lazily.

        The first yielded node is the key's home; each subsequent one is
        where the key lands if everything before it is excluded — i.e.
        exactly the reassignment :meth:`remove` would produce.
        """
        if not self._points:
            return
        seen: set[str] = set()
        start = bisect.bisect_right(self._points, _point(key))
        n = len(self._points)
        for off in range(n):
            owner = self._owners[self._points[(start + off) % n]][0]
            if owner in seen or owner in exclude:
                continue
            seen.add(owner)
            yield owner

    def preference(
        self, key: str, *, exclude: frozenset[str] | set[str] = frozenset()
    ) -> list[str]:
        """The full failover order of ``key`` (see :meth:`iter_preference`)."""
        return list(self.iter_preference(key, exclude=exclude))

    def node_for(
        self, key: str, *, exclude: frozenset[str] | set[str] = frozenset()
    ) -> str | None:
        """The first eligible node for ``key``, or None if all excluded."""
        return next(self.iter_preference(key, exclude=exclude), None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HashRing({len(self._nodes)} nodes x {self.replicas} replicas, "
            f"{len(self._points)} points)"
        )
