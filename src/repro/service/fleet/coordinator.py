"""The fleet coordinator: shard sweeps across workers, survive their faults.

:class:`FleetService` extends the single-node :class:`TuningService` with
``POST /v1/optimize_batch``: the request graph is decomposed into the same
deduplicated per-op sweep jobs a local :func:`sweep_graph` run would
evaluate (one job per *distinct* store digest), and each job is routed by
consistent-hashing its digest — which is also the wire key and the L2
store key — onto the registered workers.  Identical jobs land on the same
worker's warm caches no matter which request carried them.

Failure semantics (the point of this module):

* every remote fetch has a hard deadline (``REPRO_FLEET_DEADLINE_S``);
* a worker that times out, errors, resets the connection, or returns a
  payload failing digest verification is **quarantined** for
  ``REPRO_FLEET_QUARANTINE_S`` and the job retried on the next worker in
  the ring's failover order — capped exponential backoff with jitter
  between attempts (``REPRO_FLEET_ATTEMPTS``, ``REPRO_FLEET_BACKOFF_S``,
  ``REPRO_FLEET_BACKOFF_CAP_S``);
* when no eligible worker remains (all quarantined, dead, or unready) the
  job falls back to the coordinator's **local engine** — graceful
  degradation: a computable request is never answered with a 5xx.

Byte-identity: worker responses are the packed store payloads, validated
against the job digest on arrival; the response body is assembled by the
same pure functions ``/v1/optimize`` uses (same request digest, same
selection, same canonical serialization).  The chaos suite pins that a
batch answered through any mix of remote, retried, and locally-recovered
jobs is byte-for-byte the single-node response.
"""

from __future__ import annotations

import os
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

from repro import obs
from repro.engine.scheduler import graph_sweep_jobs
from repro.engine.store import compute_payload
from repro.engine.sweep import sweep_from_payload
from repro.hardware.cost_model import CostModel
from repro.obs.export import trace_tree
from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    relabel_exposition,
    wants_prometheus,
)

from ..protocol import (
    ProtocolError,
    build_request_graph,
    optimize_request_digest,
    optimize_response_from_sweeps,
    parse_fleet_heartbeat,
    parse_fleet_register,
    parse_optimize_request,
    payload_from_packed,
)
from ..server import (
    MAX_OPTIMIZE_CAP,
    NotFoundError,
    TuningService,
    WireReply,
    _Handler,
    make_server,
)
from .hashring import HashRing
from .registry import DEFAULT_TTL_S, WorkerRegistry

__all__ = ["FleetService", "make_fleet_server"]

#: Concurrent remote fetches per batch request (not per daemon).
DEFAULT_FAN_OUT = 8


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None


class FleetService(TuningService):
    """A tuning daemon that also coordinates a worker fleet.

    Every single-node endpoint keeps working (the coordinator *is* a full
    daemon — that is what the local-engine fallback runs on); the fleet
    endpoints are layered on top.
    """

    def __init__(
        self,
        *,
        ttl_s: float | None = None,
        deadline_s: float | None = None,
        attempts: int | None = None,
        backoff_s: float | None = None,
        backoff_cap_s: float | None = None,
        quarantine_s: float | None = None,
        fan_out: int = DEFAULT_FAN_OUT,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if deadline_s is None:
            deadline_s = _env_float("REPRO_FLEET_DEADLINE_S", 30.0)
        if attempts is None:
            attempts = int(_env_float("REPRO_FLEET_ATTEMPTS", 4))
        if backoff_s is None:
            backoff_s = _env_float("REPRO_FLEET_BACKOFF_S", 0.05)
        if backoff_cap_s is None:
            backoff_cap_s = _env_float("REPRO_FLEET_BACKOFF_CAP_S", 1.0)
        if quarantine_s is None:
            quarantine_s = _env_float("REPRO_FLEET_QUARANTINE_S", 30.0)
        if ttl_s is None:
            ttl_s = _env_float("REPRO_FLEET_TTL_S", DEFAULT_TTL_S)
        if attempts < 1:
            raise ValueError("attempts must be at least 1")
        self.deadline_s = deadline_s
        self.attempts = attempts
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.quarantine_s = quarantine_s
        self.fan_out = max(1, fan_out)
        self.workers = WorkerRegistry(ttl_s=ttl_s)
        self.service_name = "coordinator"
        self._ring_lock = threading.Lock()
        self._ring: HashRing | None = None
        self._ring_generation = -1

    # -- routing ----------------------------------------------------------------
    def _current_ring(self) -> HashRing:
        """The ring over *registered* workers, rebuilt per membership change.

        Quarantine/readiness never rebuild: they are walk-time exclusions,
        so a benched worker's keys spill to its ring successors and come
        home the moment it is eligible again — no other key moves.
        """
        generation, ids = self.workers.membership()
        with self._ring_lock:
            if self._ring is None or self._ring_generation != generation:
                self._ring = HashRing(ids)
                self._ring_generation = generation
            return self._ring

    def _pick_worker(
        self, digest: str, excluded: set[str]
    ) -> tuple[str, str] | None:
        """The first eligible ``(worker_id, url)`` for a digest, or None."""
        ring = self._current_ring()
        eligible = self.workers.eligible()
        ineligible = {n for n in ring.nodes() if n not in eligible} | excluded
        worker_id = ring.node_for(digest, exclude=ineligible)
        if worker_id is None:
            return None
        return worker_id, eligible[worker_id].url

    # -- one sharded sweep job ---------------------------------------------------
    def _fleet_payload(self, digest: str, op, req) -> dict:
        """One job's payload: remote with retry-with-exclusion, else local.

        ``excluded`` is per-job: a worker benched for this digest still
        serves other digests until its quarantine actually lands (which it
        does, immediately after, via the registry) — but within this job
        it is never asked twice.
        """
        from ..client import ServiceError, TuningClient

        excluded: set[str] = set()
        for attempt in range(1, self.attempts + 1):
            picked = self._pick_worker(digest, excluded)
            if picked is None:
                break  # fleet drained for this key: degrade locally
            worker_id, url = picked
            self.workers.record(worker_id, "dispatched")
            reason = None
            try:
                # retries=0: the coordinator *is* the retry loop, and its
                # retries must move to the next worker, not hammer a dead one.
                client = TuningClient(url, timeout=self.deadline_s, retries=0)
                _, _, data = client.sweep_packed_raw(
                    op, req.env, req.gpu, cap=req.cap, seed=req.seed
                )
                payload = payload_from_packed(data, digest=digest)
            except ProtocolError:
                # Transport said 200 but the bytes fail digest/structure
                # verification: the worker is lying or sick — bench it.
                reason = "corrupt"
            except TimeoutError:
                reason = "timeout"  # socket timed out mid-read
            except ServiceError as exc:
                reason = "timeout" if "timed out" in str(exc).lower() else "error"
            except OSError:
                reason = "error"  # connection reset: a worker died mid-send
            else:
                self.workers.record(worker_id, "ok")
                self.metrics.record_fleet("job_remote")
                obs.set_attr("fleet.worker", worker_id)
                obs.set_attr("fleet.attempts", attempt)
                return payload
            self.workers.record(worker_id, reason)
            self.workers.quarantine(worker_id, self.quarantine_s, reason)
            self.metrics.record_fleet("quarantine")
            obs.add_event("quarantine", worker=worker_id, reason=reason)
            excluded.add(worker_id)
            if attempt < self.attempts:
                self.metrics.record_fleet("retry")
                obs.add_event(
                    "retry", worker=worker_id, reason=reason, attempt=attempt
                )
                delay = min(
                    self.backoff_cap_s, self.backoff_s * 2 ** (attempt - 1)
                )
                time.sleep(delay * (0.5 + random.random()))
        # Graceful degradation: the coordinator's own engine computes the
        # identical payload (same digest, same deterministic evaluation).
        self.metrics.record_fleet("job_local_fallback")
        obs.add_event("local_fallback", excluded=",".join(sorted(excluded)))
        return compute_payload(op, req.env, req.gpu, cap=req.cap, seed=req.seed)

    def _fleet_sweeps(self, graph, req) -> dict:
        """Sweep a graph through the fleet; keyed by op name.

        The job list is the scheduler's own dedup decomposition
        (:func:`graph_sweep_jobs`), so the fleet evaluates exactly what a
        local run would — once per distinct digest — and each job still
        rides the coordinator's full L1/L2 tier chain (a warm store never
        touches the network).
        """
        op_digests, reps = graph_sweep_jobs(
            graph, req.env, req.gpu, cap=req.cap, seed=req.seed
        )
        # Contextvars don't cross executor threads: capture the ambient
        # span here and re-parent each job span onto it explicitly.
        batch_span = obs.current_span()

        def _one(item: tuple[str, object]) -> tuple[str, dict]:
            digest, op = item
            with obs.span(
                "fleet.job", parent=batch_span, op=op.name, digest=digest
            ):
                payload = self._resolve(
                    digest, lambda: self._fleet_payload(digest, op, req)
                )
            return digest, payload

        items = list(reps.items())
        payloads: dict[str, dict] = {}
        if len(items) <= 1:
            payloads.update(_one(item) for item in items)
        else:
            with ThreadPoolExecutor(
                max_workers=min(self.fan_out, len(items))
            ) as pool:
                payloads.update(pool.map(_one, items))
        # Rebuild each op's sweep from its *own* spec: deduplicated ops
        # share a payload but keep their names (exactly like sweep_graph).
        ops_by_name = {op.name: op for op in graph.ops if not op.is_view}
        return {
            name: sweep_from_payload(ops_by_name[name], payloads[digest])
            for name, digest in op_digests.items()
        }

    # -- endpoints ----------------------------------------------------------------
    def handle_optimize_batch(self, body: dict) -> dict:
        """``/v1/optimize`` semantics, sharded: byte-identical responses.

        Same parse, same request digest, same guard, same response
        assembly as :meth:`handle_optimize` — only the per-op sweep
        evaluation is distributed (and survives worker faults).
        """
        req = parse_optimize_request(body)
        if req.cap is None or req.cap > MAX_OPTIMIZE_CAP:
            raise ProtocolError(
                f"optimize_batch requires a cap of at most {MAX_OPTIMIZE_CAP} "
                "(whole graphs contain kernels with ~1e10-config spaces)"
            )
        digest = optimize_request_digest(req)
        self.metrics.record_fleet("batch")

        def _compute() -> dict:
            from repro.configsel.chain import ChainError
            from repro.configsel.selector import select_configurations
            from repro.configsel.sssp import SSSPError

            graph = build_request_graph(req)
            cost = CostModel(req.gpu)
            t0 = perf_counter()
            sweeps = self._fleet_sweeps(graph, req)
            sweep_s = perf_counter() - t0
            t0 = perf_counter()
            try:
                selection = select_configurations(
                    graph, req.env, cost, sweeps=sweeps, cap=req.cap
                )
            except (SSSPError, ChainError):
                selection = None
            select_s = perf_counter() - t0
            self.metrics.record_optimize_breakdown(sweep_s, select_s)
            self._bound_engine_memo()
            return optimize_response_from_sweeps(
                graph, sweeps, digest=digest, selection=selection
            )

        return self._resolve(digest, _compute, use_store=False)

    def handle_fleet_register(self, body: dict) -> dict:
        worker_id, url, ready, version = parse_fleet_register(body)
        self.workers.register(
            worker_id, url, ready=ready, cost_model_version=version
        )
        self._current_ring()  # fold the membership change in eagerly
        return {
            "worker_id": worker_id,
            "registered": True,
            "ttl_s": self.workers.ttl_s,
            "heartbeat_s": self.workers.ttl_s / 3.0,
            "workers": self.workers.counts(),
        }

    def handle_fleet_heartbeat(self, body: dict) -> dict:
        worker_id, ready, version = parse_fleet_heartbeat(body)
        info = self.workers.heartbeat(
            worker_id, ready=ready, cost_model_version=version
        )
        if info is None:
            # 404 tells the agent to re-register (coordinator restarted, or
            # the lease was pruned after a long silence).
            raise NotFoundError(f"unknown worker {worker_id!r}; re-register")
        return {
            "worker_id": worker_id,
            "ttl_s": self.workers.ttl_s,
            "ready": info.ready,
            "quarantined": info.quarantined(time.time()),
        }

    def handle_fleet_deregister(self, body: dict) -> dict:
        if not isinstance(body, dict) or not isinstance(
            body.get("worker_id"), str
        ):
            raise ProtocolError("deregister requires a worker_id string")
        worker_id = body["worker_id"]
        return {
            "worker_id": worker_id,
            "deregistered": self.workers.deregister(worker_id),
        }

    def fleet_status(self) -> dict:
        """The ``/v1/fleet/status`` body (and ``repro fleet status``)."""
        from repro.hardware.params import active_cost_model_version

        snapshot = self.workers.snapshot()
        # Version skew: a staged calibration promotion rolls through a
        # fleet one member at a time, and the window where members serve
        # different cost models must be *visible*, not silent (payload
        # verification already keeps a skewed worker's bytes out).
        served = active_cost_model_version()
        versions = sorted(
            {
                str(info["cost_model_version"])
                for info in snapshot.values()
                if info["live"] and info["cost_model_version"] is not None
            }
            | {str(served)}
        )
        return {
            "role": "coordinator",
            "config": {
                "ttl_s": self.workers.ttl_s,
                "deadline_s": self.deadline_s,
                "attempts": self.attempts,
                "backoff_s": self.backoff_s,
                "backoff_cap_s": self.backoff_cap_s,
                "quarantine_s": self.quarantine_s,
                "fan_out": self.fan_out,
            },
            "counts": self.workers.counts(),
            "cost_model_version": served,
            "cost_model_versions": versions,
            "version_skew": len(versions) > 1,
            "workers": snapshot,
        }

    def metrics_body(self) -> dict:
        body = super().metrics_body()
        body["fleet"]["counts"] = self.workers.counts()
        body["fleet"]["workers"] = self.workers.snapshot()
        return body

    # -- fleet-wide observability -------------------------------------------------
    def _worker_client(self, url: str):
        from ..client import TuningClient

        # Short deadline + no retries: one slow worker must not stall a
        # whole fleet scrape, and scrapes are repeated anyway.
        return TuningClient(url, timeout=min(self.deadline_s, 10.0), retries=0)

    def handle_fleet_metrics(self, accept: str | None = None):
        """``GET /v1/fleet_metrics``: every member's metrics in one body.

        JSON: the coordinator's full snapshot plus each worker's, keyed by
        worker id (``None`` for an unreachable member).  Prometheus text:
        the coordinator's own exposition (with HELP/TYPE metadata)
        followed by each worker's samples re-labeled ``worker="<id>"`` —
        comment lines are stripped so metadata appears exactly once.
        """
        members = sorted(self.workers.snapshot().items())
        if wants_prometheus(accept):
            own = self.metrics.prometheus()
            parts = [relabel_exposition(own, worker="coordinator")]
            # HELP/TYPE once, from the coordinator's registry (all members
            # run the same metric schema).
            meta = [
                line for line in own.splitlines() if line.startswith("#")
            ]
            for worker_id, info in members:
                try:
                    text = self._worker_client(info["url"]).metrics_prometheus()
                except Exception:  # noqa: BLE001 - scrape what answers
                    continue
                parts.append(relabel_exposition(text, worker=worker_id))
            body = "\n".join(meta) + "\n" + "".join(parts)
            return WireReply(
                status=200,
                headers={"Content-Type": PROMETHEUS_CONTENT_TYPE},
                body=body.encode("utf-8"),
            )
        workers: dict = {}
        for worker_id, info in members:
            try:
                workers[worker_id] = self._worker_client(info["url"]).metrics()
            except Exception:  # noqa: BLE001 - scrape what answers
                workers[worker_id] = None
        return {"coordinator": self.metrics_body(), "workers": workers}

    def handle_trace(self, trace_id: str) -> dict:
        """The fleet-wide view of one trace: local spans plus every
        reachable worker's, deduplicated by span id.

        This is what makes a traced ``/v1/optimize_batch`` export as one
        connected tree — the worker-side server/sweep spans live in the
        workers' ring buffers, not here.
        """
        if not trace_id or "/" in trace_id:
            raise ProtocolError(f"malformed trace id {trace_id!r}")
        spans = list(obs.get_tracer().trace(trace_id))
        seen = {s["span_id"] for s in spans}
        for worker_id, info in sorted(self.workers.snapshot().items()):
            try:
                remote = self._worker_client(info["url"]).trace(trace_id)
            except Exception:  # noqa: BLE001 - a 404/dead worker has no spans
                continue
            for rec in remote.get("spans", []):
                if isinstance(rec, dict) and rec.get("span_id") not in seen:
                    seen.add(rec["span_id"])
                    spans.append(rec)
        if not spans:
            raise NotFoundError(f"no spans retained for trace {trace_id}")
        tree = trace_tree(spans)
        return {
            "trace_id": trace_id,
            "span_count": tree["spans"],
            "connected": tree["connected"],
            "spans": spans,
        }


class _FleetHandler(_Handler):
    """The single-node routes plus the coordinator's fleet endpoints."""

    service: FleetService

    def _route_get(self, path: str) -> bool:
        if path == "/v1/fleet/status":
            self._run("/v1/fleet/status", self.service.fleet_status)
            return True
        if path == "/v1/fleet_metrics":
            self._run(
                "/v1/fleet_metrics",
                lambda: self.service.handle_fleet_metrics(
                    self.headers.get("Accept")
                ),
            )
            return True
        return super()._route_get(path)

    def _route_post(self, path: str) -> bool:
        if path == "/v1/optimize_batch":
            self._run(
                "/v1/optimize_batch",
                lambda: self.service.handle_optimize_batch(self._read_body()),
            )
            return True
        if path == "/v1/fleet/register":
            self._run(
                "/v1/fleet/register",
                lambda: self.service.handle_fleet_register(self._read_body()),
            )
            return True
        if path == "/v1/fleet/heartbeat":
            self._run(
                "/v1/fleet/heartbeat",
                lambda: self.service.handle_fleet_heartbeat(self._read_body()),
            )
            return True
        if path == "/v1/fleet/deregister":
            self._run(
                "/v1/fleet/deregister",
                lambda: self.service.handle_fleet_deregister(self._read_body()),
            )
            return True
        return super()._route_post(path)


def make_fleet_server(
    service: FleetService, host: str = "127.0.0.1", port: int = 0
):
    """Bind a threaded HTTP server exposing the coordinator's routes."""
    return make_server(service, host, port, handler_cls=_FleetHandler)
