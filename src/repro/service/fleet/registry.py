"""Coordinator-side worker registry: leases, readiness, quarantine.

Workers announce themselves (``POST /v1/fleet/register``) and then keep a
TTL lease alive with heartbeats (``POST /v1/fleet/heartbeat``).  The
registry distinguishes the two states the fleet's routing needs:

* **live** — the lease is unexpired: the process answered recently.  A
  worker that crashes simply stops heartbeating and ages out of the live
  set within one TTL; nothing has to detect the death synchronously.
* **ready** — the worker itself reports its ``/readyz`` state in each
  heartbeat (engine warm-up done, store reachable, not draining).  A live
  but unready worker is *up* but not *usable*, and receives no traffic.

Quarantine is the coordinator's own verdict, orthogonal to both: a worker
that timed out, errored, or returned a corrupt payload is benched for
``quarantine_s`` regardless of what its heartbeats claim.  Its ring keys
re-route to the next worker clockwise (see
:mod:`repro.service.fleet.hashring`); when the quarantine lapses — or the
worker re-registers, which clears it — the keys come home.

Every transition and per-worker counter is surfaced through
:meth:`WorkerRegistry.snapshot` into the coordinator's ``/metrics``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_TTL_S",
    "WORKER_EVENTS",
    "WorkerInfo",
    "WorkerRegistry",
]

#: Default heartbeat lease: a silent worker is dropped from the live set
#: after this long.  Workers heartbeat at ttl/3, so one lost heartbeat
#: does not flap the lease.
DEFAULT_TTL_S = 15.0

#: Per-worker dispatch-outcome counters kept by the coordinator.
WORKER_EVENTS = ("dispatched", "ok", "timeout", "error", "corrupt", "quarantines")

#: Leases this many TTLs cold are pruned from the registry entirely (the
#: worker is assumed permanently gone; re-registration resurrects it).
_PRUNE_AFTER_TTLS = 20.0


@dataclass
class WorkerInfo:
    """One registered worker daemon and its lifecycle state."""

    worker_id: str
    url: str
    registered_at: float
    last_heartbeat: float
    ready: bool = False
    #: The cost-model version the worker reports serving (register +
    #: every heartbeat) — a staged calibration promotion rolls through a
    #: fleet worker-by-worker, and the coordinator surfaces the skew.
    cost_model_version: int | str | None = None
    quarantined_until: float = 0.0
    quarantine_reason: str = ""
    counters: dict[str, int] = field(
        default_factory=lambda: {event: 0 for event in WORKER_EVENTS}
    )

    def live(self, now: float, ttl_s: float) -> bool:
        return (now - self.last_heartbeat) <= ttl_s

    def quarantined(self, now: float) -> bool:
        return now < self.quarantined_until


class WorkerRegistry:
    """Thread-safe registry of the fleet's workers (coordinator state).

    ``generation`` increments whenever ring-relevant membership changes
    (register, deregister, prune) — the coordinator rebuilds its hash
    ring only then.  Quarantine and readiness do *not* bump it: they are
    walk-time exclusions, so every other key keeps its home worker.
    """

    def __init__(self, *, ttl_s: float = DEFAULT_TTL_S) -> None:
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        self.ttl_s = ttl_s
        self._lock = threading.Lock()
        self._workers: dict[str, WorkerInfo] = {}
        self.generation = 0

    # -- lifecycle --------------------------------------------------------------
    def register(
        self,
        worker_id: str,
        url: str,
        *,
        ready: bool = False,
        cost_model_version: int | str | None = None,
    ) -> WorkerInfo:
        """Admit (or refresh) one worker; clears any standing quarantine.

        Re-registration is how a recovered worker rejoins after a crash:
        it gets a fresh lease and a clean slate, and — because ring
        membership is keyed by ``worker_id`` — exactly its old keys back.
        """
        if not worker_id:
            raise ValueError("worker_id must be a non-empty string")
        now = time.time()
        with self._lock:
            self._prune_locked(now)
            info = self._workers.get(worker_id)
            if info is None:
                info = WorkerInfo(
                    worker_id=worker_id,
                    url=url,
                    registered_at=now,
                    last_heartbeat=now,
                    ready=ready,
                    cost_model_version=cost_model_version,
                )
                self._workers[worker_id] = info
                self.generation += 1
            else:
                info.url = url
                info.registered_at = now
                info.last_heartbeat = now
                info.ready = ready
                info.cost_model_version = cost_model_version
                info.quarantined_until = 0.0
                info.quarantine_reason = ""
            return info

    def heartbeat(
        self,
        worker_id: str,
        *,
        ready: bool,
        cost_model_version: int | str | None = None,
    ) -> WorkerInfo | None:
        """Renew one lease; None for an unknown worker (re-register)."""
        now = time.time()
        with self._lock:
            info = self._workers.get(worker_id)
            if info is None:
                return None
            info.last_heartbeat = now
            info.ready = ready
            if cost_model_version is not None:
                info.cost_model_version = cost_model_version
            return info

    def deregister(self, worker_id: str) -> bool:
        with self._lock:
            if self._workers.pop(worker_id, None) is None:
                return False
            self.generation += 1
            return True

    def _prune_locked(self, now: float) -> None:
        cutoff = now - _PRUNE_AFTER_TTLS * self.ttl_s
        dead = [
            wid
            for wid, info in self._workers.items()
            if info.last_heartbeat < cutoff
        ]
        for wid in dead:
            del self._workers[wid]
        if dead:
            self.generation += 1

    # -- routing views ------------------------------------------------------------
    def membership(self) -> tuple[int, tuple[str, ...]]:
        """(generation, every registered worker id) — the ring's input."""
        with self._lock:
            return self.generation, tuple(sorted(self._workers))

    def eligible(self, now: float | None = None) -> dict[str, WorkerInfo]:
        """Workers that may receive traffic: live + ready + unquarantined."""
        now = time.time() if now is None else now
        with self._lock:
            return {
                wid: info
                for wid, info in self._workers.items()
                if info.live(now, self.ttl_s)
                and info.ready
                and not info.quarantined(now)
            }

    def get(self, worker_id: str) -> WorkerInfo | None:
        with self._lock:
            return self._workers.get(worker_id)

    # -- verdicts and counters ------------------------------------------------------
    def record(self, worker_id: str, event: str) -> None:
        if event not in WORKER_EVENTS:
            raise ValueError(
                f"unknown worker event {event!r}; known: {WORKER_EVENTS}"
            )
        with self._lock:
            info = self._workers.get(worker_id)
            if info is not None:
                info.counters[event] += 1

    def quarantine(
        self, worker_id: str, duration_s: float, reason: str
    ) -> None:
        """Bench one worker for ``duration_s``; its keys re-route meanwhile."""
        now = time.time()
        with self._lock:
            info = self._workers.get(worker_id)
            if info is None:
                return
            already = info.quarantined(now)
            info.quarantined_until = max(
                info.quarantined_until, now + duration_s
            )
            info.quarantine_reason = reason
            if not already:
                info.counters["quarantines"] += 1

    # -- observability ------------------------------------------------------------
    def counts(self, now: float | None = None) -> dict[str, int]:
        now = time.time() if now is None else now
        with self._lock:
            live = sum(
                1 for i in self._workers.values() if i.live(now, self.ttl_s)
            )
            ready = sum(
                1
                for i in self._workers.values()
                if i.live(now, self.ttl_s)
                and i.ready
                and not i.quarantined(now)
            )
            quarantined = sum(
                1 for i in self._workers.values() if i.quarantined(now)
            )
            return {
                "registered": len(self._workers),
                "live": live,
                "ready": ready,
                "quarantined": quarantined,
            }

    def snapshot(self, now: float | None = None) -> dict:
        """The ``/metrics`` view: per-worker state + counters."""
        now = time.time() if now is None else now
        with self._lock:
            return {
                wid: {
                    "url": info.url,
                    "live": info.live(now, self.ttl_s),
                    "ready": info.ready,
                    "cost_model_version": info.cost_model_version,
                    "quarantined": info.quarantined(now),
                    "quarantine_reason": info.quarantine_reason,
                    "quarantined_for_s": max(
                        0.0, info.quarantined_until - now
                    ),
                    "heartbeat_age_s": now - info.last_heartbeat,
                    "counters": dict(info.counters),
                }
                for wid, info in sorted(self._workers.items())
            }
