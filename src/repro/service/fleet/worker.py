"""Worker-side fleet membership: register once, then heartbeat forever.

A fleet worker is an ordinary tuning daemon plus this agent — a daemon
thread that announces the worker's URL to the coordinator and keeps its
TTL lease alive, reporting the worker's own readiness (``/readyz``) with
each beat so the coordinator can tell "up" from "usable".

The agent is deliberately dumb and self-healing:

* heartbeats run at a third of the coordinator-granted TTL, so one lost
  beat cannot flap the lease;
* a 404 on heartbeat means the coordinator forgot us (it restarted, or
  pruned a long-silent lease) — the agent simply re-registers;
* an unreachable coordinator is retried on the same cadence forever; the
  worker keeps serving its own endpoints regardless.
"""

from __future__ import annotations

import threading
import uuid

__all__ = ["WorkerAgent"]


class WorkerAgent:
    """Keeps one worker registered with one coordinator."""

    def __init__(
        self,
        coordinator_url: str,
        worker_url: str,
        *,
        worker_id: str | None = None,
        service=None,
        heartbeat_s: float | None = None,
    ) -> None:
        self.coordinator_url = coordinator_url.rstrip("/")
        self.worker_url = worker_url.rstrip("/")
        self.worker_id = worker_id or f"worker-{uuid.uuid4().hex[:8]}"
        self.service = service
        self._heartbeat_s = heartbeat_s
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.registered = threading.Event()

    def _client(self):
        from repro.service.client import TuningClient

        # Short timeout and no client-level retries: the agent *is* the
        # retry loop, on the heartbeat cadence.
        return TuningClient(self.coordinator_url, timeout=5.0, retries=0)

    def _ready(self) -> bool:
        if self.service is None:
            return True
        try:
            ok, _ = self.service.ready()
            return ok
        except Exception:  # noqa: BLE001 - report unready, never crash the loop
            return False

    def _register(self, client) -> float:
        """One registration round trip; returns the heartbeat interval."""
        reply = client.fleet_register(
            worker_id=self.worker_id, url=self.worker_url, ready=self._ready()
        )
        self.registered.set()
        ttl = float(reply.get("ttl_s", 15.0))
        return self._heartbeat_s if self._heartbeat_s is not None else ttl / 3.0

    def _loop(self) -> None:
        from repro.service.client import ServiceError

        client = self._client()
        interval = 1.0
        registered = False
        while not self._stop.is_set():
            try:
                if not registered:
                    interval = self._register(client)
                    registered = True
                else:
                    client.fleet_heartbeat(
                        worker_id=self.worker_id, ready=self._ready()
                    )
            except ServiceError as exc:
                if exc.status == 404:
                    # The coordinator no longer knows us: re-register on
                    # the next beat (fresh lease, quarantine cleared).
                    registered = False
                # Unreachable/5xx: keep beating; the coordinator's TTL
                # will bench us until it hears from us again.
            except Exception:  # noqa: BLE001 - the loop must survive
                pass
            self._stop.wait(interval)

    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name=f"fleet-agent-{self.worker_id}"
        )
        self._thread.start()

    def stop(self, *, deregister: bool = False) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if deregister:
            try:
                self._client().fleet_deregister(worker_id=self.worker_id)
            except Exception:  # noqa: BLE001 - best-effort goodbye
                pass
