"""The fault-tolerant tuning fleet: coordinator/worker sharding, stdlib-only.

Layout:

* :mod:`.hashring` — consistent hashing of sweep digests (which are also
  the wire keys and the L2 store keys) onto workers, with deterministic
  rebalancing;
* :mod:`.registry` — coordinator-side worker leases: registration,
  heartbeats (live vs. ready), quarantine, per-worker counters;
* :mod:`.faults` — the env-gated fault-injection harness
  (``REPRO_FAULT_SPEC``: kill / hang / corrupt) the chaos suite drives;
* :mod:`.coordinator` — :class:`FleetService` and ``/v1/optimize_batch``
  (retry-with-exclusion, local-engine degradation);
* :mod:`.worker` — the worker-side registration/heartbeat agent.

``coordinator``/``worker`` are exported lazily: they import the service's
server/client modules, which themselves import :mod:`.faults` — eager
imports here would be circular.
"""

from .faults import (
    ENV_VAR,
    FAULT_KINDS,
    KILL_EXIT_CODE,
    FaultClause,
    FaultInjector,
    FaultSpecError,
    parse_fault_spec,
)
from .hashring import DEFAULT_REPLICAS, HashRing
from .registry import DEFAULT_TTL_S, WORKER_EVENTS, WorkerInfo, WorkerRegistry

__all__ = [
    "DEFAULT_REPLICAS",
    "DEFAULT_TTL_S",
    "ENV_VAR",
    "FAULT_KINDS",
    "KILL_EXIT_CODE",
    "FaultClause",
    "FaultInjector",
    "FaultSpecError",
    "FleetService",
    "HashRing",
    "WORKER_EVENTS",
    "WorkerAgent",
    "WorkerInfo",
    "WorkerRegistry",
    "make_fleet_server",
    "parse_fault_spec",
]

_LAZY = {
    "FleetService": ("repro.service.fleet.coordinator", "FleetService"),
    "make_fleet_server": ("repro.service.fleet.coordinator", "make_fleet_server"),
    "WorkerAgent": ("repro.service.fleet.worker", "WorkerAgent"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
