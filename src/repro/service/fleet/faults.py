"""Env-gated fault injection: kill, hang, or corrupt a daemon's responses.

The chaos suite proves the fleet's failure semantics against *real*
faults, not mocks: a worker daemon started with ``REPRO_FAULT_SPEC`` set
will genuinely die mid-request (``os._exit``), stall past the
coordinator's deadline, or flip bytes in an otherwise-valid response (so
the coordinator's digest verification has something real to catch).  The
injector is wired into the HTTP handler of every daemon but costs nothing
when the spec is empty — ``FaultInjector.from_env()`` returns ``None`` and
the handler skips the hooks entirely.

Spec grammar (whitespace around separators is ignored)::

    REPRO_FAULT_SPEC = clause[,clause...]
    clause           = kind[:field=value...]
    kind             = kill | hang | corrupt | crash-rollout
    field            = path=<substring>    endpoint filter (default "/v1/")
                     | after=<N>           fire from the Nth match on (default 1)
                     | count=<M>           fire at most M times; 0 = unlimited
                     |                     (default 1)
                     | delay=<seconds>     hang duration (hang only, default 30)

Examples::

    kill:path=/v1/sweep:after=2          # die on the 2nd sweep request
    hang:path=/v1/sweep:delay=8          # stall the 1st sweep for 8 s
    corrupt:path=/v1/sweep:count=0       # corrupt every sweep response

``kill`` exits with :data:`KILL_EXIT_CODE` *before* any response bytes are
written — the client sees a connection reset, exactly what a crashed
worker looks like.  ``corrupt`` flips bytes mid-body while preserving
``Content-Length``, so the transport layer is happy and only payload
verification (npz CRC / digest check) can notice.  ``crash-rollout`` is a
kill aimed at the calibration rollout's commit hooks instead of an HTTP
route: its default ``path`` is ``rollout-pre-commit`` (die just before
the promote commit point; ``path=rollout-post-commit`` dies just after),
which the chaos suite uses to prove promotion recovers to exactly one of
{prior, promoted}.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "KILL_EXIT_CODE",
    "FaultClause",
    "FaultInjector",
    "FaultSpecError",
    "parse_fault_spec",
]

ENV_VAR = "REPRO_FAULT_SPEC"
FAULT_KINDS = ("kill", "hang", "corrupt", "crash-rollout")

#: Exit status of a ``kill`` fault — distinguishable from a clean 0 and
#: from Python's generic 1 in process tables and test assertions.
KILL_EXIT_CODE = 17


class FaultSpecError(ValueError):
    """A malformed ``REPRO_FAULT_SPEC`` value (fail loud at startup)."""


@dataclass
class FaultClause:
    """One parsed clause plus its runtime firing state."""

    kind: str
    path: str = "/v1/"
    after: int = 1
    count: int = 1  # 0 = unlimited
    delay: float = 30.0
    #: Requests that matched ``path`` so far (drives ``after``).
    matched: int = field(default=0, compare=False)
    #: Times this clause actually fired (bounded by ``count``).
    fired: int = field(default=0, compare=False)

    def to_wire(self) -> dict:
        return {
            "kind": self.kind,
            "path": self.path,
            "after": self.after,
            "count": self.count,
            "delay": self.delay,
            "matched": self.matched,
            "fired": self.fired,
        }


def _parse_int(value: str, where: str, *, minimum: int) -> int:
    try:
        n = int(value)
    except ValueError:
        raise FaultSpecError(f"{where} must be an integer, got {value!r}") from None
    if n < minimum:
        raise FaultSpecError(f"{where} must be >= {minimum}, got {n}")
    return n


def parse_fault_spec(spec: str) -> list[FaultClause]:
    """Parse one ``REPRO_FAULT_SPEC`` string into clauses (may be empty)."""
    clauses: list[FaultClause] = []
    for raw in spec.split(","):
        raw = raw.strip()
        if not raw:
            continue
        kind, _, rest = raw.partition(":")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r} in clause {raw!r}; "
                f"known: {list(FAULT_KINDS)}"
            )
        clause = FaultClause(kind=kind)
        if kind == "crash-rollout":
            # This kind targets the rollout manager's commit hooks, not an
            # HTTP route; default to dying just before the commit point
            # (``path=rollout-post-commit`` crashes just after it).
            clause.path = "rollout-pre-commit"
        if rest:
            for part in rest.split(":"):
                key, eq, value = part.partition("=")
                key, value = key.strip(), value.strip()
                if not eq or not value:
                    raise FaultSpecError(
                        f"fault clause field {part!r} is not key=value"
                    )
                if key == "path":
                    clause.path = value
                elif key == "after":
                    clause.after = _parse_int(value, "after", minimum=1)
                elif key == "count":
                    clause.count = _parse_int(value, "count", minimum=0)
                elif key == "delay":
                    try:
                        clause.delay = float(value)
                    except ValueError:
                        raise FaultSpecError(
                            f"delay must be a number, got {value!r}"
                        ) from None
                    if clause.delay < 0:
                        raise FaultSpecError("delay must be non-negative")
                else:
                    raise FaultSpecError(
                        f"unknown fault clause field {key!r}; "
                        "known: path, after, count, delay"
                    )
        clauses.append(clause)
    return clauses


def _corrupt_bytes(data: bytes) -> bytes:
    """Flip bytes without changing the length (Content-Length stays true)."""
    if not data:
        return data
    out = bytearray(data)
    # Three spread-out flips: one mid-body (hits array data in an npz, a
    # value in JSON), plus the two quartile points for tiny bodies' sake.
    for pos in (len(out) // 2, len(out) // 4, (3 * len(out)) // 4):
        out[pos] ^= 0x5A
    return bytes(out)


class FaultInjector:
    """Matches requests against clauses and applies the fired faults."""

    def __init__(self, clauses: list[FaultClause]) -> None:
        self._lock = threading.Lock()
        self.clauses = clauses

    @classmethod
    def from_spec(cls, spec: str | None) -> "FaultInjector | None":
        """An injector for ``spec``, or None when there is nothing to do."""
        if not spec or not spec.strip():
            return None
        clauses = parse_fault_spec(spec)
        return cls(clauses) if clauses else None

    @classmethod
    def from_env(cls) -> "FaultInjector | None":
        return cls.from_spec(os.environ.get(ENV_VAR))

    def _fires(self, clause: FaultClause, endpoint: str) -> bool:
        """Match + advance one clause's counters (thread-safe)."""
        if clause.path not in endpoint:
            return False
        with self._lock:
            clause.matched += 1
            if clause.matched < clause.after:
                return False
            if clause.count and clause.fired >= clause.count:
                return False
            clause.fired += 1
            return True

    # -- hook points (called by the HTTP handler) ------------------------------
    def before(self, endpoint: str) -> None:
        """Apply ``kill``/``hang`` faults before the request is handled.

        ``kill`` never returns: the process dies exactly as a crashed
        worker would, mid-request, with no response bytes on the wire and
        no atexit cleanup.
        """
        for clause in self.clauses:
            if clause.kind in ("kill", "crash-rollout") and self._fires(
                clause, endpoint
            ):
                os._exit(KILL_EXIT_CODE)
            if clause.kind == "hang" and self._fires(clause, endpoint):
                time.sleep(clause.delay)

    def mangle_reply(self, endpoint: str, reply):
        """Apply ``corrupt`` faults to an outgoing :class:`WireReply`.

        A streamed reply is drained into memory first so the flipped bytes
        still match the advertised ``Content-Length``.  (Duck-typed on the
        reply's ``body``/``stream`` attributes; the server module imports
        this one, not the other way around.)
        """
        for clause in self.clauses:
            if clause.kind == "corrupt" and self._fires(clause, endpoint):
                if reply.stream is not None:
                    try:
                        data = reply.stream.read()
                    finally:
                        reply.stream.close()
                    reply.stream = None
                    reply.stream_len = 0
                    reply.body = _corrupt_bytes(data)
                else:
                    reply.body = _corrupt_bytes(reply.body)
        return reply

    def stats(self) -> list[dict]:
        with self._lock:
            return [c.to_wire() for c in self.clauses]
