"""Tuning-as-a-service: a long-lived layout-recommendation daemon.

The recipe's artifacts — swept configuration spaces and tuned schedules —
are reusable across processes (the L2 sweep store) but until now every
consumer was a batch process.  This package turns the engine into a
*service*:

* :mod:`repro.service.protocol` — the canonical JSON wire schema.  A
  request carries exactly the inputs of :func:`repro.engine.sweep_digest`
  (op signature, dim sizes, GPUSpec, sampling knobs), so the wire key and
  the store key are the same object: a request digested on the wire hits
  the same L2 entry a batch run would have written.
* :mod:`repro.service.coalesce` — single-flight request coalescing and the
  bounded in-memory payload cache (the service's L1).  N concurrent
  requests for one digest trigger exactly one evaluation.
* :mod:`repro.service.metrics` — per-tier hit counters and p50/p95/p99
  request latencies, served at ``GET /metrics``.
* :mod:`repro.service.server` — the ``ThreadingHTTPServer`` daemon:
  ``POST /v1/sweep`` (best configurations + predicted times for one
  operator), ``POST /v1/optimize`` (whole-graph tuned schedule through
  the parallel scheduler), ``POST /v1/register`` / ``GET
  /v1/schedule/<digest>`` (the validate-then-store schedule registry,
  with a background revalidation loop surfaced in ``/metrics``),
  ``GET /healthz``, ``GET /metrics``.
* :mod:`repro.service.client` — a stdlib ``urllib`` client, used by the
  ``repro serve`` / ``repro query`` CLI pair, with bounded
  exponential-backoff retry for transient transport failures on
  idempotent requests.
* :mod:`repro.service.fleet` — the fault-tolerant sharded fleet: a
  coordinator that consistent-hashes sweep digests across registered
  worker daemons (``POST /v1/optimize_batch``) with per-request
  deadlines, retry-with-exclusion and quarantine, degrading to the
  local engine when the fleet drains; plus the ``REPRO_FAULT_SPEC``
  fault-injection harness the chaos suite drives.

Responses are canonical JSON (sorted keys, fixed separators) built from
engine payloads, so every client of a warm digest receives byte-identical
bytes — and, because the engine is bit-identical to
:func:`repro.autotuner.tuner.sweep_op_reference`, those bytes equal a
response derived from a fresh scalar reference sweep.
"""

from .client import ServiceError, TuningClient
from .coalesce import BoundedCache, SingleFlight
from .metrics import ServiceMetrics
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    canonical_json_bytes,
    op_from_wire,
    op_to_wire,
    sweep_request_digest,
    sweep_response_from_sweep,
)
from .server import NotFoundError, RegistrationRejected, TuningService, make_server

__all__ = [
    "BoundedCache",
    "NotFoundError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RegistrationRejected",
    "ServiceError",
    "ServiceMetrics",
    "SingleFlight",
    "TuningClient",
    "TuningService",
    "canonical_json_bytes",
    "make_server",
    "op_from_wire",
    "op_to_wire",
    "sweep_request_digest",
    "sweep_response_from_sweep",
]
