"""Distribution summaries: text-mode violin plots for Figs. 4 and 5.

The paper summarizes each operator's configuration-space runtimes as a
violin plot — the width encodes how many configurations share a runtime.
Offline and plot-library-free, we render the same information as histogram
rows plus summary statistics (best / worst / quartiles / modality), which
is what the figure benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass

from .tuner import SweepResult

__all__ = ["ViolinSummary", "summarize", "render_ascii"]


@dataclass(frozen=True)
class ViolinSummary:
    """Summary statistics of one operator's runtime distribution."""

    op_name: str
    num_configs: int
    best_us: float
    q25_us: float
    median_us: float
    q75_us: float
    worst_us: float
    spread: float
    #: histogram over log-spaced buckets between best and worst
    histogram: tuple[int, ...]

    @property
    def long_tailed(self) -> bool:
        """Fig. 5's observation: fused-kernel distributions have very long
        tails (a bad configuration is worse by orders of magnitude)."""
        return self.spread > 10.0


def summarize(sweep: SweepResult, *, buckets: int = 12) -> ViolinSummary:
    """Compute the violin summary of a sweep."""
    times = sweep.times_us()
    if not times:
        raise ValueError(f"no feasible configurations for {sweep.op.name!r}")
    best, worst = times[0], times[-1]
    hist = [0] * buckets
    if worst > best:
        import math

        log_lo, log_hi = math.log(best), math.log(worst)
        width = (log_hi - log_lo) / buckets
        for t in times:
            idx = min(buckets - 1, int((math.log(t) - log_lo) / width)) if width else 0
            hist[idx] += 1
    else:
        hist[0] = len(times)
    return ViolinSummary(
        op_name=sweep.op.name,
        num_configs=len(times),
        best_us=best,
        q25_us=sweep.quantile_us(0.25),
        median_us=sweep.quantile_us(0.5),
        q75_us=sweep.quantile_us(0.75),
        worst_us=worst,
        spread=worst / best,
        histogram=tuple(hist),
    )


def render_ascii(summary: ViolinSummary, *, width: int = 40) -> str:
    """Render one violin as text: header line + histogram bars."""
    lines = [
        f"{summary.op_name}: {summary.num_configs} configs, "
        f"best {summary.best_us:.3g} us, median {summary.median_us:.3g} us, "
        f"worst {summary.worst_us:.3g} us (spread {summary.spread:.1f}x)"
    ]
    peak = max(summary.histogram) or 1
    for count in summary.histogram:
        bar = "#" * max(0, round(width * count / peak))
        lines.append(f"  |{bar}")
    return "\n".join(lines)
