"""Exhaustive operator tuning (Step 3 of the recipe, Sec. V).

For every operator the tuner measures (under the cost model) every feasible
configuration — layouts, vectorization/warp dims, GEMM algorithm, tensor-core
mode — and records the full runtime distribution.  The distributions are the
paper's violin plots: Fig. 4 (contractions) and Fig. 5 (fused kernels); the
per-(input,output)-layout minima feed the configuration-selection graph of
Step 4.

Two implementations produce the same result:

* :func:`sweep_op` routes through the batched engine
  (:mod:`repro.engine`): the config space is enumerated once into arrays,
  the roofline is evaluated vectorized, measurements materialize lazily and
  whole sweeps are memoized process-wide.
* :func:`sweep_op_reference` is the original scalar per-config loop, kept
  as the semantic contract: the engine must be **bit-identical** to it
  (tier-1 and the property suite pin this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.cost_model import CostModel, KernelTime
from repro.ir.dims import DimEnv
from repro.ir.graph import DataflowGraph
from repro.ir.operator import OpClass, OpSpec
from repro.layouts.config import OpConfig
from repro.layouts.configspace import contraction_configs, kernel_configs
from repro.layouts.layout import Layout

__all__ = [
    "ConfigMeasurement",
    "SweepResult",
    "sweep_op",
    "sweep_op_reference",
    "sweep_graph",
]


@dataclass(frozen=True)
class ConfigMeasurement:
    """One point of a sweep: a configuration and its predicted time."""

    config: OpConfig
    time: KernelTime

    @property
    def total_us(self) -> float:
        return self.time.total_us


@dataclass
class SweepResult:
    """The full runtime distribution of one operator's configuration space."""

    op: OpSpec
    measurements: list[ConfigMeasurement] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Engine-built sweeps arrive pre-sorted (their sequence's sort() is
        # a no-op); plain lists are sorted here as before.
        self.measurements.sort(key=lambda m: m.total_us)
        self._layout_index: (
            tuple[
                dict[tuple, ConfigMeasurement],
                dict[tuple, ConfigMeasurement],
                dict[tuple, ConfigMeasurement],
            ]
            | None
        ) = None
        self._pair_minima: dict[tuple[int, int], dict] = {}
        self._totals_arr: np.ndarray | None = None
        self._operand_arrays: tuple[list, list] | None = None

    # -- distribution queries ------------------------------------------------
    @property
    def best(self) -> ConfigMeasurement:
        if not self.measurements:
            raise ValueError(f"no feasible configurations for {self.op.name!r}")
        return self.measurements[0]

    @property
    def worst(self) -> ConfigMeasurement:
        if not self.measurements:
            raise ValueError(f"no feasible configurations for {self.op.name!r}")
        return self.measurements[-1]

    @property
    def num_configs(self) -> int:
        return len(self.measurements)

    def times_us(self) -> list[float]:
        fast = getattr(self.measurements, "times_us", None)
        if fast is not None:
            # Engine sweeps keep the sorted totals as an array; reading them
            # avoids materializing any measurement objects.
            return fast()
        return [m.total_us for m in self.measurements]

    def totals_array(self) -> np.ndarray:
        """Sorted ``total_us`` values as one float64 array.

        Engine sweeps hand back their sorted-totals array without
        materializing any measurement; plain lists are converted (and
        cached) on first use.  The configuration-selection fast path reads
        this instead of looping ``measurements`` in Python.
        """
        if self._totals_arr is None:
            fast = getattr(self.measurements, "totals_array", None)
            if fast is not None:
                self._totals_arr = fast()
            else:
                self._totals_arr = np.array(
                    [m.total_us for m in self.measurements], dtype=float
                )
        return self._totals_arr

    def operand_layout_arrays(self) -> tuple[list, list]:
        """Per-operand layout vocabularies plus per-measurement layout ids.

        Returns ``(vocabs, ids)``: for operand slot ``s`` (the op's inputs
        followed by its outputs), ``vocabs[s]`` is the list of layout
        choices seen for that operand and ``ids[s]`` an int array mapping
        each (sorted-order) measurement to its ``vocabs[s]`` index.  A
        measurement that does not carry slot ``s`` (operand arity can
        differ across algorithm variants) maps to a ``None`` vocabulary
        entry, which consumers treat as unconstrained.

        Engine-backed sweeps derive both straight from the enumerated
        config space; list-backed sweeps are indexed in one pass.  Layout
        predicates (consistency with pins, penalty terms) then become one
        small vocabulary scan plus a NumPy gather instead of a Python loop
        over every measurement.
        """
        if self._operand_arrays is None:
            fast = getattr(self.measurements, "operand_layout_index", None)
            arrays = fast() if fast is not None else None
            if arrays is None:
                arrays = self._index_operand_layouts()
            self._operand_arrays = arrays
        return self._operand_arrays

    def _index_operand_layouts(self) -> tuple[list, list]:
        n_in = len(self.op.inputs)
        n_out = len(self.op.outputs)
        slots = n_in + n_out
        n = len(self.measurements)
        vocabs: list[list] = [[] for _ in range(slots)]
        lookup: list[dict] = [{} for _ in range(slots)]
        ids = [np.empty(n, dtype=np.int64) for _ in range(slots)]
        for i, m in enumerate(self.measurements):
            ins = m.config.input_layouts
            outs = m.config.output_layouts
            for s in range(slots):
                if s < n_in:
                    layout = ins[s] if s < len(ins) else None
                else:
                    o = s - n_in
                    layout = outs[o] if o < len(outs) else None
                key = layout.dims if layout is not None else None
                k = lookup[s].get(key)
                if k is None:
                    k = lookup[s][key] = len(vocabs[s])
                    vocabs[s].append(layout)
                ids[s][i] = k
        return vocabs, ids

    def quantile_us(self, q: float) -> float:
        """Runtime at quantile ``q`` of the (sorted) distribution."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.measurements:
            raise ValueError(f"no feasible configurations for {self.op.name!r}")
        idx = round(q * (len(self.measurements) - 1))
        return self.measurements[idx].total_us

    def at_quantile(self, q: float) -> ConfigMeasurement:
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        idx = round(q * (len(self.measurements) - 1))
        return self.measurements[idx]

    @property
    def spread(self) -> float:
        """worst/best runtime ratio (the length of the violin's tail)."""
        return self.worst.total_us / self.best.total_us

    # -- layout-conditioned minima (for the configuration graph) ---------------
    def _ensure_layout_index(self):
        """Build the per-layout minima index on first use.

        One pass over the (sorted) measurements: the first measurement seen
        for each key is its fastest.  Turns the repeated linear scans of the
        configuration-selection layer into dict lookups.
        """
        if self._layout_index is None:
            by_pair: dict[tuple, ConfigMeasurement] = {}
            by_in: dict[tuple, ConfigMeasurement] = {}
            by_out: dict[tuple, ConfigMeasurement] = {}
            for m in self.measurements:
                c = m.config
                by_pair.setdefault((c.input_layouts, c.output_layouts), m)
                by_in.setdefault(c.input_layouts, m)
                by_out.setdefault(c.output_layouts, m)
            self._layout_index = (by_pair, by_in, by_out)
        return self._layout_index

    def best_for_layouts(
        self, input_layouts: tuple[Layout, ...] | None, output_layouts: tuple[Layout, ...] | None
    ) -> ConfigMeasurement | None:
        """Fastest configuration matching the given layout constraints.

        ``None`` constraints are wildcards.  Returns None if no measured
        configuration matches.
        """
        if not self.measurements:
            return None
        if input_layouts is None and output_layouts is None:
            return self.measurements[0]
        by_pair, by_in, by_out = self._ensure_layout_index()
        if input_layouts is None:
            return by_out.get(tuple(output_layouts))
        if output_layouts is None:
            return by_in.get(tuple(input_layouts))
        return by_pair.get((tuple(input_layouts), tuple(output_layouts)))

    def layout_pair_minima(
        self, in_index: int, out_index: int
    ) -> dict[tuple[tuple[str, ...], tuple[str, ...]], float]:
        """Minimum runtime per (input[in_index], output[out_index]) layout pair.

        One cached pass over the sorted measurements (first hit per key is
        the minimum); the configuration-selection graph reads these minima
        per chain boundary instead of re-scanning every measurement.
        """
        key = (in_index, out_index)
        cached = self._pair_minima.get(key)
        if cached is None:
            cached = {}
            for m in self.measurements:
                c = m.config
                pair = (c.input_layouts[in_index].dims, c.output_layouts[out_index].dims)
                if pair not in cached:
                    cached[pair] = m.total_us
            self._pair_minima[key] = cached
        return cached

    def best_with_operand_layout(
        self, operand_index: int, layout: Layout, *, output: bool = False
    ) -> ConfigMeasurement | None:
        """Fastest configuration whose given operand uses ``layout``."""
        for m in self.measurements:
            layouts = m.config.output_layouts if output else m.config.input_layouts
            if operand_index >= len(layouts):
                # Operand arity can differ across algorithms/fusion variants;
                # skip configs that don't carry this operand instead of
                # giving up on the whole (sorted) list.
                continue
            if layouts[operand_index] == layout:
                return m
        return None


def sweep_op(
    op: OpSpec,
    env: DimEnv,
    cost: CostModel | None = None,
    *,
    cap: int | None = 2000,
    seed: int = 0x5EED,
) -> SweepResult:
    """Measure every feasible configuration of one operator (batched engine).

    Bit-identical to :func:`sweep_op_reference`; memoized process-wide.
    """
    from repro.engine.sweep import sweep_op as _engine_sweep_op

    return _engine_sweep_op(op, env, cost, cap=cap, seed=seed)


def sweep_op_reference(
    op: OpSpec,
    env: DimEnv,
    cost: CostModel | None = None,
    *,
    cap: int | None = 2000,
    seed: int = 0x5EED,
) -> SweepResult:
    """The scalar reference sweep: one cost-model call per configuration.

    This is the engine's correctness contract — slow but obviously faithful
    to the per-config cost model.  Keep it in sync with nothing: the engine
    must follow *it*.
    """
    cost = cost or CostModel()
    if op.op_class is OpClass.TENSOR_CONTRACTION:
        configs = contraction_configs(op, env)
    else:
        configs = kernel_configs(op, env, cap=cap, seed=seed)
    measurements: list[ConfigMeasurement] = []
    for config in configs:
        kt = cost.time_op(op, config, env)
        if kt is None:
            continue
        measurements.append(ConfigMeasurement(config=config, time=kt))
    return SweepResult(op=op, measurements=measurements)


def sweep_graph(
    graph: DataflowGraph,
    env: DimEnv,
    cost: CostModel | None = None,
    *,
    cap: int | None = 2000,
    jobs: int | None = None,
) -> dict[str, SweepResult]:
    """Sweep every non-view operator of a graph; keyed by op name.

    Routes through the engine scheduler: structurally identical operators
    share one sweep, results persist in the two-tier sweep cache, and cold
    sweeps run on ``jobs`` worker processes (``None`` defers to
    ``REPRO_JOBS``; results are identical at any job count).
    """
    from repro.engine.scheduler import sweep_graph as _engine_sweep_graph

    return _engine_sweep_graph(graph, env, cost, cap=cap, jobs=jobs)
