"""Exhaustive operator tuning (Step 3 of the recipe, Sec. V).

For every operator the tuner measures (under the cost model) every feasible
configuration — layouts, vectorization/warp dims, GEMM algorithm, tensor-core
mode — and records the full runtime distribution.  The distributions are the
paper's violin plots: Fig. 4 (contractions) and Fig. 5 (fused kernels); the
per-(input,output)-layout minima feed the configuration-selection graph of
Step 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.cost_model import CostModel, KernelTime
from repro.ir.dims import DimEnv
from repro.ir.graph import DataflowGraph
from repro.ir.operator import OpClass, OpSpec
from repro.layouts.config import OpConfig
from repro.layouts.configspace import contraction_configs, kernel_configs
from repro.layouts.layout import Layout

__all__ = ["ConfigMeasurement", "SweepResult", "sweep_op", "sweep_graph"]


@dataclass(frozen=True)
class ConfigMeasurement:
    """One point of a sweep: a configuration and its predicted time."""

    config: OpConfig
    time: KernelTime

    @property
    def total_us(self) -> float:
        return self.time.total_us


@dataclass
class SweepResult:
    """The full runtime distribution of one operator's configuration space."""

    op: OpSpec
    measurements: list[ConfigMeasurement] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.measurements.sort(key=lambda m: m.total_us)

    # -- distribution queries ------------------------------------------------
    @property
    def best(self) -> ConfigMeasurement:
        if not self.measurements:
            raise ValueError(f"no feasible configurations for {self.op.name!r}")
        return self.measurements[0]

    @property
    def worst(self) -> ConfigMeasurement:
        if not self.measurements:
            raise ValueError(f"no feasible configurations for {self.op.name!r}")
        return self.measurements[-1]

    @property
    def num_configs(self) -> int:
        return len(self.measurements)

    def times_us(self) -> list[float]:
        return [m.total_us for m in self.measurements]

    def quantile_us(self, q: float) -> float:
        """Runtime at quantile ``q`` of the (sorted) distribution."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.measurements:
            raise ValueError(f"no feasible configurations for {self.op.name!r}")
        idx = round(q * (len(self.measurements) - 1))
        return self.measurements[idx].total_us

    def at_quantile(self, q: float) -> ConfigMeasurement:
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        idx = round(q * (len(self.measurements) - 1))
        return self.measurements[idx]

    @property
    def spread(self) -> float:
        """worst/best runtime ratio (the length of the violin's tail)."""
        return self.worst.total_us / self.best.total_us

    # -- layout-conditioned minima (for the configuration graph) ---------------
    def best_for_layouts(
        self, input_layouts: tuple[Layout, ...] | None, output_layouts: tuple[Layout, ...] | None
    ) -> ConfigMeasurement | None:
        """Fastest configuration matching the given layout constraints.

        ``None`` constraints are wildcards.  Returns None if no measured
        configuration matches.
        """
        for m in self.measurements:  # sorted ascending: first match is best
            if input_layouts is not None and m.config.input_layouts != input_layouts:
                continue
            if output_layouts is not None and m.config.output_layouts != output_layouts:
                continue
            return m
        return None

    def best_with_operand_layout(
        self, operand_index: int, layout: Layout, *, output: bool = False
    ) -> ConfigMeasurement | None:
        """Fastest configuration whose given operand uses ``layout``."""
        for m in self.measurements:
            layouts = m.config.output_layouts if output else m.config.input_layouts
            if operand_index >= len(layouts):
                return None
            if layouts[operand_index] == layout:
                return m
        return None


def sweep_op(
    op: OpSpec,
    env: DimEnv,
    cost: CostModel | None = None,
    *,
    cap: int | None = 2000,
    seed: int = 0x5EED,
) -> SweepResult:
    """Measure every feasible configuration of one operator."""
    cost = cost or CostModel()
    if op.op_class is OpClass.TENSOR_CONTRACTION:
        configs = contraction_configs(op, env)
    else:
        configs = kernel_configs(op, env, cap=cap, seed=seed)
    measurements: list[ConfigMeasurement] = []
    for config in configs:
        kt = cost.time_op(op, config, env)
        if kt is None:
            continue
        measurements.append(ConfigMeasurement(config=config, time=kt))
    return SweepResult(op=op, measurements=measurements)


def sweep_graph(
    graph: DataflowGraph,
    env: DimEnv,
    cost: CostModel | None = None,
    *,
    cap: int | None = 2000,
) -> dict[str, SweepResult]:
    """Sweep every non-view operator of a graph; keyed by op name."""
    cost = cost or CostModel()
    results: dict[str, SweepResult] = {}
    for op in graph.ops:
        if op.is_view:
            continue
        results[op.name] = sweep_op(op, env, cost, cap=cap)
    return results
