"""Exhaustive per-operator configuration tuning (paper Sec. V)."""

from .cache import CacheMismatch, load_sweep, save_sweep, sweep_from_dict, sweep_to_dict
from .tuner import (
    ConfigMeasurement,
    SweepResult,
    sweep_graph,
    sweep_op,
    sweep_op_reference,
)
from .violin import ViolinSummary, render_ascii, summarize

__all__ = [
    "CacheMismatch",
    "ConfigMeasurement",
    "load_sweep",
    "save_sweep",
    "sweep_from_dict",
    "sweep_to_dict",
    "SweepResult",
    "ViolinSummary",
    "render_ascii",
    "summarize",
    "sweep_graph",
    "sweep_op",
    "sweep_op_reference",
]
