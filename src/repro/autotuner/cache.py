"""Persistence for sweep results: save and reload tuning artifacts.

Exhaustive sweeps are the expensive part of the recipe; real autotuners
persist their measurements.  Sweep results round-trip through JSON so a
tuning session can resume, and a re-measured sweep can be *verified* against
a stored one (the cost model is deterministic, so any drift means the model
changed and cached selections are stale).

Every artifact embeds :data:`~repro.hardware.cost_model.COST_MODEL_VERSION`.
Loading an artifact whose version differs from the running model raises
:class:`CacheMismatch` — stale sweeps are rejected, never silently reused.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.hardware.cost_model import KernelTime
from repro.hardware.params import active_cost_model_version
from repro.ir.operator import OpSpec
from repro.layouts.config import OpConfig
from repro.layouts.layout import Layout

from .tuner import ConfigMeasurement, SweepResult

__all__ = ["save_sweep", "load_sweep", "sweep_to_dict", "sweep_from_dict", "CacheMismatch"]


class CacheMismatch(ValueError):
    """A cached sweep disagrees with a fresh measurement."""


def _config_to_dict(c: OpConfig) -> dict:
    return {
        "op_name": c.op_name,
        "input_layouts": [list(l.dims) for l in c.input_layouts],
        "output_layouts": [list(l.dims) for l in c.output_layouts],
        "vector_dim": c.vector_dim,
        "warp_reduce_dim": c.warp_reduce_dim,
        "algorithm": c.algorithm,
        "use_tensor_cores": c.use_tensor_cores,
    }


def _config_from_dict(d: dict) -> OpConfig:
    return OpConfig(
        op_name=d["op_name"],
        input_layouts=tuple(Layout(tuple(x)) for x in d["input_layouts"]),
        output_layouts=tuple(Layout(tuple(x)) for x in d["output_layouts"]),
        vector_dim=d["vector_dim"],
        warp_reduce_dim=d["warp_reduce_dim"],
        algorithm=d["algorithm"],
        use_tensor_cores=d["use_tensor_cores"],
    )


def sweep_to_dict(sweep: SweepResult) -> dict:
    """Serializable form of a sweep (op identity + all measurements)."""
    return {
        "cost_model_version": active_cost_model_version(),
        "op_name": sweep.op.name,
        "measurements": [
            {
                "config": _config_to_dict(m.config),
                "compute_us": m.time.compute_us,
                "memory_us": m.time.memory_us,
                "launch_us": m.time.launch_us,
            }
            for m in sweep.measurements
        ],
    }


def sweep_from_dict(data: dict, op: OpSpec) -> SweepResult:
    """Rebuild a sweep for ``op`` from its serialized form.

    Raises :class:`CacheMismatch` if the artifact was produced by a
    different (or unversioned, pre-versioning) cost model.
    """
    version = data.get("cost_model_version")
    served = active_cost_model_version()
    if version != served:
        raise CacheMismatch(
            f"cached sweep for {data.get('op_name')!r} was measured under cost "
            f"model version {version!r}, but this process runs version "
            f"{served!r}; re-run the sweep instead of reusing it"
        )
    if data["op_name"] != op.name:
        raise CacheMismatch(
            f"cached sweep is for {data['op_name']!r}, not {op.name!r}"
        )
    measurements = [
        ConfigMeasurement(
            config=_config_from_dict(m["config"]),
            time=KernelTime(
                compute_us=m["compute_us"],
                memory_us=m["memory_us"],
                launch_us=m["launch_us"],
            ),
        )
        for m in data["measurements"]
    ]
    return SweepResult(op=op, measurements=measurements)


def save_sweep(sweep: SweepResult, path: str | Path) -> None:
    """Write one sweep to a JSON file."""
    Path(path).write_text(json.dumps(sweep_to_dict(sweep)))


def load_sweep(path: str | Path, op: OpSpec, *, verify_against: SweepResult | None = None) -> SweepResult:
    """Load a sweep; optionally verify it against a fresh measurement.

    Verification compares the best configuration and its time — enough to
    detect a changed cost model without re-serializing everything.
    """
    data = json.loads(Path(path).read_text())
    sweep = sweep_from_dict(data, op)
    if verify_against is not None:
        fresh = verify_against
        if (
            abs(sweep.best.total_us - fresh.best.total_us) > 1e-6
            or sweep.best.config.key() != fresh.best.config.key()
        ):
            raise CacheMismatch(
                f"cached best for {op.name!r} ({sweep.best.total_us:.3f} us) "
                f"!= fresh best ({fresh.best.total_us:.3f} us); cost model changed?"
            )
    return sweep
