"""Element datatypes used for data-movement accounting.

The paper trains in mixed precision (Sec. III-D): FP16 storage with FP32
accumulation.  Because the subject of study is *data movement*, the datatype
matters only through its byte width; numerics in the NumPy execution engine
always run at float32 or float64 and are checked at tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DType", "FP16", "FP32", "FP64"]


@dataclass(frozen=True)
class DType:
    """An element type: a name, a byte width, and a NumPy compute dtype."""

    name: str
    itemsize: int
    np_dtype: np.dtype

    def __post_init__(self) -> None:
        if self.itemsize <= 0:
            raise ValueError("itemsize must be positive")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name

    def bytes_for(self, num_elements: int) -> int:
        """Total bytes occupied by ``num_elements`` elements."""
        if num_elements < 0:
            raise ValueError("num_elements must be non-negative")
        return num_elements * self.itemsize


FP16 = DType("fp16", 2, np.dtype(np.float16))
FP32 = DType("fp32", 4, np.dtype(np.float32))
FP64 = DType("fp64", 8, np.dtype(np.float64))
