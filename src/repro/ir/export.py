"""Graph export: DOT (graphviz) and JSON renderings of dataflow graphs.

The paper's figures are SDFG renderings; this module produces equivalent
artifacts offline — a DOT file styled like Figs. 1b/2 (operator class
shapes, flop/IO edge annotations, movement-class coloring) and a JSON dump
for external tooling.
"""

from __future__ import annotations

import json

from .dims import DimEnv
from .graph import DataflowGraph
from .operator import OpClass

__all__ = ["to_dot", "to_json"]

_CLASS_STYLE = {
    OpClass.TENSOR_CONTRACTION: ("triangle", "#a0c4ff"),
    OpClass.STAT_NORMALIZATION: ("box", "#ffd6a5"),
    OpClass.ELEMENTWISE: ("ellipse", "#caffbf"),
}

_MOVEMENT_COLOR = {
    "IO > flop": "#d62828",  # data movement dominates: red
    "IO ~ flop": "#f77f00",
    "IO < flop": "#2a9d8f",  # compute dominates: green
}


def _quote(s: str) -> str:
    return '"' + s.replace('"', '\\"') + '"'


def to_dot(graph: DataflowGraph, env: DimEnv, *, include_views: bool = False) -> str:
    """Render the graph as DOT, styled like the paper's dataflow figures.

    Operators are shaped by class and colored by their flop-to-IO movement
    class; data containers are plain boxes; edge labels carry the access
    volume in megawords.
    """
    lines = [
        f"digraph {_quote(graph.name)} {{",
        "  rankdir=TB;",
        "  node [fontname=Helvetica fontsize=10];",
    ]
    emitted_containers: set[str] = set()

    def container_node(name: str) -> None:
        if name in emitted_containers:
            return
        emitted_containers.add(name)
        spec = graph.container(name)
        label = f"{name}\\n[{','.join(spec.dims)}]"
        lines.append(
            f"  {_quote('t_' + name)} [shape=box style=rounded label={_quote(label)}];"
        )

    for op in graph.ops:
        if op.is_view and not include_views:
            continue
        shape, fill = _CLASS_STYLE[op.op_class]
        color = _MOVEMENT_COLOR.get(op.movement_class(env), "#999999")
        flop = op.flops(env)
        label = f"{op.name}\\n{flop / 2**30:.2f} Gflop"
        lines.append(
            f"  {_quote('op_' + op.name)} [shape={shape} style=filled "
            f"fillcolor={_quote(fill)} color={_quote(color)} penwidth=2 "
            f"label={_quote(label)}];"
        )
        for t in op.inputs:
            container_node(t.name)
            mw = t.volume(env) / 1e6
            lines.append(
                f"  {_quote('t_' + t.name)} -> {_quote('op_' + op.name)} "
                f"[label={_quote(f'{mw:.1f} Mw')}];"
            )
        for t in op.outputs:
            container_node(t.name)
            mw = t.volume(env) / 1e6
            lines.append(
                f"  {_quote('op_' + op.name)} -> {_quote('t_' + t.name)} "
                f"[label={_quote(f'{mw:.1f} Mw')}];"
            )
    lines.append("}")
    return "\n".join(lines)


def to_json(graph: DataflowGraph, env: DimEnv) -> str:
    """Serialize structure + analysis annotations as JSON."""
    ops = []
    for op in graph.ops:
        ops.append(
            {
                "name": op.name,
                "class": op.op_class.value,
                "stage": op.stage.value,
                "is_view": op.is_view,
                "kernel_label": op.kernel_label,
                "einsum": op.einsum,
                "inputs": [t.name for t in op.inputs],
                "outputs": [t.name for t in op.outputs],
                "flop": op.flops(env),
                "io_bytes": op.io_bytes(env),
                "independent_dims": list(op.ispace.independent),
                "reduction_dims": list(op.ispace.reduction),
            }
        )
    containers = {
        name: {
            "dims": list(spec.dims),
            "dtype": spec.dtype.name,
            "is_param": spec.is_param,
            "bytes": spec.nbytes(env),
        }
        for name, spec in graph.containers.items()
    }
    return json.dumps(
        {"name": graph.name, "operators": ops, "containers": containers}, indent=2
    )
