"""Graph-level dataflow analyses (Sec. III-A).

These functions implement the first step of the paper's recipe: annotate the
dataflow graph with flop and data-volume estimates, classify operators, and
aggregate per-class totals.  Runtime-based aggregation (Table I's "% Runtime"
column) additionally needs a cost model and lives in
:mod:`repro.analysis.tables`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .dims import DimEnv
from .graph import DataflowGraph
from .operator import FlopIoSummary, OpClass, OpSpec

__all__ = [
    "OpAnnotation",
    "annotate",
    "class_flop_fractions",
    "data_movement_reduction",
    "unique_io_words",
]


@dataclass(frozen=True)
class OpAnnotation:
    """Per-operator analysis record: flop, IO, ratio, movement class."""

    op: OpSpec
    summary: FlopIoSummary
    movement_class: str

    @property
    def name(self) -> str:
        return self.op.name


def annotate(graph: DataflowGraph, env: DimEnv) -> list[OpAnnotation]:
    """Annotate every operator with its flop/IO summary (Figs. 1b, 2)."""
    return [
        OpAnnotation(op=op, summary=op.summary(env), movement_class=op.movement_class(env))
        for op in graph.ops
    ]


def class_flop_fractions(graph: DataflowGraph, env: DimEnv) -> dict[OpClass, float]:
    """Fraction of total flop per operator class (Table I's "% flop")."""
    breakdown = graph.class_breakdown(env)
    total = sum(s.flop for s in breakdown.values())
    if total == 0:
        return {cls: 0.0 for cls in breakdown}
    return {cls: s.flop / total for cls, s in breakdown.items()}


def unique_io_words(ops: list[OpSpec], env: DimEnv) -> int:
    """Words moved by a *fused* implementation of ``ops``.

    Interior edges (tensors produced and consumed entirely within the set,
    and not needed outside it) are kept in registers/shared memory and do
    not touch main memory.  This is the accounting behind the paper's
    22.91% data-movement-reduction figure (Sec. VI-C): "for each fused
    kernel we omit the interim outputs and inputs that are not part of the
    overall I/O".

    A tensor counts as:
      * input  — read by some op in the set but produced by none of them;
      * output — produced by an op in the set;  interior outputs (consumed
        only inside the set) are omitted.

    Consumption *outside* the set cannot be derived from the op list alone,
    so callers pass ops whose outputs are all externally visible or use the
    fused OpSpec (whose output list already reflects what is materialized).
    """
    produced: dict[str, OpSpec] = {}
    for op in ops:
        for t in op.outputs:
            produced[t.name] = op
    consumed_inside: set[str] = set()
    external_inputs: dict[str, int] = {}
    for op in ops:
        for t in op.inputs:
            if t.name in produced:
                consumed_inside.add(t.name)
            else:
                external_inputs[t.name] = t.volume(env)
    words = sum(external_inputs.values())
    for op in ops:
        for t in op.outputs:
            if t.name in consumed_inside:
                continue  # interior edge: stays on chip
            words += t.volume(env)
    return words


def data_movement_reduction(
    unfused: DataflowGraph, fused: DataflowGraph, env: DimEnv
) -> float:
    """Fractional reduction in words moved going from unfused to fused.

    Both graphs must compute the same function; the metric compares the sum
    of per-kernel access volumes.  Returns e.g. ``0.2291`` for a 22.91%
    reduction.
    """
    before = unfused.total_io_words(env)
    after = fused.total_io_words(env)
    if before <= 0:
        raise ValueError("unfused graph moves no data")
    return (before - after) / before
