"""Iteration spaces: the fusion-legality abstraction of Sec. IV.

The paper detects fusion opportunities by analyzing operator *iteration
spaces*:

* every operator has **independent** dimensions (parallel loops);
* statistical normalizations additionally have **reduction** dimensions;
* tensor contractions have reduction dimensions plus *special* independent
  dimensions private to each input operand (the ``M``/``N`` GEMM dims).

Two operators can be fused if their iteration-space implementations are
compatible: either identical, or differing only in that one performs a
reduction (Sec. IV, "Two operators can be fused if ...").  When only the
outermost independent dimensions match, *partial* fusion is possible: the
shared outer loops are merged and the inner spaces are run sequentially
inside.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .dims import DimEnv

__all__ = ["IterationSpace", "Compatibility"]


class Compatibility(Enum):
    """Result of an iteration-space compatibility query."""

    IDENTICAL = "identical"
    #: Same independent space; exactly one side also reduces.
    REDUCTION_EXTENSION = "reduction-extension"
    #: Outermost independent dims shared; inner spaces sequenced (partial fusion).
    PARTIAL = "partial"
    INCOMPATIBLE = "incompatible"

    @property
    def fusible(self) -> bool:
        return self is not Compatibility.INCOMPATIBLE


@dataclass(frozen=True)
class IterationSpace:
    """Independent and reduction dimensions of one operator.

    Dimension order is significant: it is the loop-nest order, outermost
    first, matching the paper's requirement that "the order and size of
    dimensions and the implementation for each must match".
    """

    independent: tuple[str, ...]
    reduction: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.independent, tuple):
            object.__setattr__(self, "independent", tuple(self.independent))
        if not isinstance(self.reduction, tuple):
            object.__setattr__(self, "reduction", tuple(self.reduction))
        overlap = set(self.independent) & set(self.reduction)
        if overlap:
            raise ValueError(f"dims {sorted(overlap)} are both independent and reduction")

    # -- basic queries --------------------------------------------------------
    @property
    def all_dims(self) -> tuple[str, ...]:
        return self.independent + self.reduction

    @property
    def has_reduction(self) -> bool:
        return bool(self.reduction)

    def size(self, env: DimEnv) -> int:
        """Total number of iteration points."""
        return env.volume(self.all_dims)

    def parallel_size(self, env: DimEnv) -> int:
        """Number of independent (parallelizable) iteration points."""
        return env.volume(self.independent)

    # -- fusion legality ------------------------------------------------------
    def compatibility(self, other: "IterationSpace") -> Compatibility:
        """Classify how this space composes with ``other`` (in that order).

        ``self`` is the producer (runs first), ``other`` the consumer.
        """
        if self.independent == other.independent:
            if self.reduction == other.reduction:
                return Compatibility.IDENTICAL
            if not self.reduction or not other.reduction:
                return Compatibility.REDUCTION_EXTENSION
            return Compatibility.INCOMPATIBLE
        shared = self._shared_outer(other)
        if shared:
            return Compatibility.PARTIAL
        return Compatibility.INCOMPATIBLE

    def _shared_outer(self, other: "IterationSpace") -> tuple[str, ...]:
        """Longest common prefix of independent dims (shareable outer loops)."""
        shared: list[str] = []
        for a, b in zip(self.independent, other.independent):
            if a != b:
                break
            shared.append(a)
        return tuple(shared)

    def fuse(self, other: "IterationSpace") -> "IterationSpace":
        """The iteration space of the fused operator ``self ; other``.

        Raises ``ValueError`` if the spaces are incompatible.
        """
        compat = self.compatibility(other)
        if compat is Compatibility.INCOMPATIBLE:
            raise ValueError(f"cannot fuse {self} with {other}")
        if compat is Compatibility.IDENTICAL:
            return self
        if compat is Compatibility.REDUCTION_EXTENSION:
            reduction = self.reduction or other.reduction
            return IterationSpace(self.independent, reduction)
        # Partial fusion: shared outer independent dims; the union of the
        # remaining dims becomes the (sequenced) inner space.  We keep the
        # consumer's inner ordering after the producer's, de-duplicated.
        shared = self._shared_outer(other)
        inner: list[str] = []
        for d in self.independent + other.independent:
            if d not in shared and d not in inner:
                inner.append(d)
        reduction: list[str] = []
        for d in self.reduction + other.reduction:
            if d not in reduction:
                reduction.append(d)
        return IterationSpace(shared + tuple(inner), tuple(reduction))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        red = f" / red[{','.join(self.reduction)}]" if self.reduction else ""
        return f"[{','.join(self.independent)}]{red}"
