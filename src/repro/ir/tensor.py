"""Tensor specifications: the data containers of the dataflow IR.

A :class:`TensorSpec` is purely structural — an ordered tuple of named
dimensions plus a datatype.  Concrete sizes come from a
:class:`~repro.ir.dims.DimEnv` at analysis time, and concrete memory
arrangement from a :class:`~repro.layouts.layout.Layout` at tuning time.
"""

from __future__ import annotations

from dataclasses import dataclass

from .dims import DimEnv
from .dtypes import FP16, DType

__all__ = ["TensorSpec"]


@dataclass(frozen=True)
class TensorSpec:
    """A named tensor with ordered named dimensions.

    Parameters
    ----------
    name:
        Unique container name within a dataflow graph (e.g. ``"qq"``).
    dims:
        Ordered dimension names, e.g. ``("p", "h", "b", "j")``.  The order is
        the *logical* index order used in einsum strings; physical layout is
        chosen separately.
    dtype:
        Element type; defaults to FP16 as in the paper's mixed-precision
        setting.
    is_param:
        Whether this tensor is a learned parameter (weights / biases).  Used
        when partitioning backward ops into dX and dW stages.
    """

    name: str
    dims: tuple[str, ...]
    dtype: DType = FP16
    is_param: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tensor name must be non-empty")
        if not isinstance(self.dims, tuple):
            object.__setattr__(self, "dims", tuple(self.dims))
        if len(set(self.dims)) != len(self.dims):
            raise ValueError(f"tensor {self.name!r} has repeated dims: {self.dims}")

    # -- size accounting ----------------------------------------------------
    def volume(self, env: DimEnv) -> int:
        """Number of elements under the given dimension sizes."""
        return env.volume(self.dims)

    def nbytes(self, env: DimEnv) -> int:
        """Bytes occupied under the given dimension sizes."""
        return self.dtype.bytes_for(self.volume(env))

    def shape(self, env: DimEnv) -> tuple[int, ...]:
        return env.shape(self.dims)

    @property
    def rank(self) -> int:
        return len(self.dims)

    # -- derivation helpers ---------------------------------------------------
    def renamed(self, name: str) -> "TensorSpec":
        """A copy of this spec under a different container name."""
        return TensorSpec(name=name, dims=self.dims, dtype=self.dtype, is_param=self.is_param)

    def grad(self) -> "TensorSpec":
        """The spec of this tensor's gradient (``d<name>``, same shape)."""
        return TensorSpec(
            name=f"d{self.name}", dims=self.dims, dtype=self.dtype, is_param=False
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}[{','.join(self.dims)}]:{self.dtype.name}"
