"""Zero-cost view operators: aliasing without data movement.

Two situations in the transformer graphs need re-indexed reads of existing
storage rather than new tensors:

* **self-attention aliasing** — the same activation ``x[i,b,j]`` feeds the
  key/value projections indexed by the key sequence dim ``k`` (Sec. II-B1:
  "Self-attention uses the same tensor for all three inputs");
* **stacked-projection slicing** — algebraic fusion computes
  ``[Q̃ K̃ Ṽ] = [W_Q W_K W_V] X`` as one contraction (Sec. IV-D); the per-head
  query/key/value tensors are then constant-stride slices of the result.

A view is an :class:`~repro.ir.operator.OpSpec` with ``is_view=True``: it
keeps the dataflow graph a pure producer/consumer structure while costing
zero flop and zero bytes.
"""

from __future__ import annotations

from .iteration_space import IterationSpace
from .operator import OpClass, OpSpec, Stage
from .tensor import TensorSpec

__all__ = ["view_spec"]


def view_spec(
    name: str,
    base: TensorSpec,
    view: TensorSpec,
    *,
    stage: Stage = Stage.FORWARD,
) -> OpSpec:
    """A zero-cost aliasing node exposing ``base``'s storage as ``view``.

    The view may rename dims (``x[i,b,j]`` -> ``xk[i,b,k]``) or select a
    slice of a stacked tensor (``qkv[c,p,h,b,j]`` -> ``qq[p,h,b,j]``), so
    the view's volume must not exceed the base's.
    """
    return OpSpec(
        name=name,
        op_class=OpClass.ELEMENTWISE,
        inputs=(base,),
        outputs=(view,),
        ispace=IterationSpace(view.dims),
        flop_per_point=0.0,
        stage=stage,
        is_view=True,
    )
