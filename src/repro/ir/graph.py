"""The stateful dataflow graph: containers, operators, movement edges.

This is the reproduction's analog of DaCe's SDFG (Sec. II-C): a bipartite
graph between *data containers* (:class:`~repro.ir.tensor.TensorSpec`) and
*operators* (:class:`~repro.ir.operator.OpSpec`) where every edge represents
exact data movement.  The graph supports the dataflow analyses of Sec. III-A:
flop / IO annotation, operator-class aggregation (Table I), and the global
data-movement accounting used for the 22.91% reduction claim (Sec. VI-C).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .dims import DimEnv
from .operator import FlopIoSummary, OpClass, OpSpec, Stage
from .tensor import TensorSpec

__all__ = ["DataflowGraph", "GraphValidationError", "Edge"]


class GraphValidationError(ValueError):
    """Raised when a dataflow graph is structurally inconsistent."""


@dataclass(frozen=True)
class Edge:
    """A data-movement edge: container -> op (read) or op -> container (write)."""

    tensor: str
    op: str
    direction: str  # "read" | "write"

    def __post_init__(self) -> None:
        if self.direction not in ("read", "write"):
            raise ValueError(f"bad edge direction {self.direction!r}")


class DataflowGraph:
    """An append-only dataflow multigraph over named tensors and operators.

    Containers are identified by tensor name; an operator's inputs reference
    containers either produced by earlier operators or declared as graph
    inputs (parameters, activations entering the layer).
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._ops: dict[str, OpSpec] = {}
        self._op_order: list[str] = []
        self._containers: dict[str, TensorSpec] = {}
        self._producer: dict[str, str] = {}
        self._consumers: dict[str, list[str]] = defaultdict(list)
        self._graph_inputs: dict[str, TensorSpec] = {}

    # -- construction -----------------------------------------------------------
    def add_input(self, tensor: TensorSpec) -> TensorSpec:
        """Declare a graph input container (activation or parameter)."""
        existing = self._containers.get(tensor.name)
        if existing is not None:
            if existing != tensor:
                raise GraphValidationError(
                    f"container {tensor.name!r} re-declared with a different spec"
                )
            return tensor
        self._containers[tensor.name] = tensor
        self._graph_inputs[tensor.name] = tensor
        return tensor

    def add_op(self, op: OpSpec) -> OpSpec:
        """Append an operator; inputs must already exist as containers."""
        if op.name in self._ops:
            raise GraphValidationError(f"duplicate operator name {op.name!r}")
        for t in op.inputs:
            existing = self._containers.get(t.name)
            if existing is None:
                raise GraphValidationError(
                    f"operator {op.name!r} reads undefined container {t.name!r}"
                )
            if existing.dims != t.dims:
                raise GraphValidationError(
                    f"operator {op.name!r} reads {t.name!r} with dims {t.dims}, "
                    f"but the container has dims {existing.dims}"
                )
        for t in op.outputs:
            if t.name in self._producer:
                raise GraphValidationError(
                    f"container {t.name!r} written by both "
                    f"{self._producer[t.name]!r} and {op.name!r}"
                )
            if t.name in self._graph_inputs:
                raise GraphValidationError(
                    f"operator {op.name!r} writes graph input {t.name!r}"
                )
            self._containers[t.name] = t
            self._producer[t.name] = op.name
        for t in op.inputs:
            self._consumers[t.name].append(op.name)
        self._ops[op.name] = op
        self._op_order.append(op.name)
        return op

    # -- accessors -----------------------------------------------------------
    @property
    def ops(self) -> tuple[OpSpec, ...]:
        """Operators in insertion (topological) order."""
        return tuple(self._ops[n] for n in self._op_order)

    @property
    def op_names(self) -> tuple[str, ...]:
        return tuple(self._op_order)

    def op(self, name: str) -> OpSpec:
        try:
            return self._ops[name]
        except KeyError:
            raise KeyError(f"no operator {name!r} in graph {self.name!r}") from None

    def container(self, name: str) -> TensorSpec:
        try:
            return self._containers[name]
        except KeyError:
            raise KeyError(f"no container {name!r} in graph {self.name!r}") from None

    @property
    def containers(self) -> dict[str, TensorSpec]:
        return dict(self._containers)

    @property
    def graph_inputs(self) -> tuple[TensorSpec, ...]:
        return tuple(self._graph_inputs.values())

    def producer_of(self, tensor_name: str) -> str | None:
        """Name of the op producing a container, or None for graph inputs."""
        return self._producer.get(tensor_name)

    def consumers_of(self, tensor_name: str) -> tuple[str, ...]:
        return tuple(self._consumers.get(tensor_name, ()))

    def graph_outputs(self) -> tuple[TensorSpec, ...]:
        """Containers that are produced but never consumed."""
        return tuple(
            self._containers[n]
            for n in self._producer
            if not self._consumers.get(n)
        )

    def edges(self) -> Iterator[Edge]:
        for op in self.ops:
            for t in op.inputs:
                yield Edge(t.name, op.name, "read")
            for t in op.outputs:
                yield Edge(t.name, op.name, "write")

    def __len__(self) -> int:
        return len(self._ops)

    def __contains__(self, op_name: str) -> bool:
        return op_name in self._ops

    def __iter__(self) -> Iterator[OpSpec]:
        return iter(self.ops)

    # -- validation -----------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise GraphValidationError on failure."""
        seen: set[str] = set(self._graph_inputs)
        for op in self.ops:
            for t in op.inputs:
                if t.name not in seen:
                    raise GraphValidationError(
                        f"operator {op.name!r} reads {t.name!r} before it is produced"
                    )
            for t in op.outputs:
                seen.add(t.name)
        # Iteration-space dims must cover every operand dim (sanity of counts).
        for op in self.ops:
            if op.is_view:
                continue  # views re-index storage; dims legitimately differ
            space_dims = set(op.ispace.all_dims)
            for t in op.inputs + op.outputs:
                extra = set(t.dims) - space_dims
                if extra:
                    raise GraphValidationError(
                        f"operator {op.name!r}: operand {t.name!r} has dims "
                        f"{sorted(extra)} outside the iteration space"
                    )

    # -- dataflow analyses (Sec. III-A) ----------------------------------------
    def total_flops(self, env: DimEnv) -> float:
        return sum(op.flops(env) for op in self.ops)

    def total_io_bytes(self, env: DimEnv) -> int:
        """Sum of per-operator IO assuming every operator runs as a kernel."""
        return sum(op.io_bytes(env) for op in self.ops)

    def total_io_words(self, env: DimEnv) -> int:
        return sum(op.io_words(env) for op in self.ops)

    def class_breakdown(self, env: DimEnv) -> dict[OpClass, FlopIoSummary]:
        """Aggregate flop/IO per operator class (backs Table I)."""
        acc: dict[OpClass, FlopIoSummary] = {}
        for op in self.ops:
            s = op.summary(env)
            acc[op.op_class] = acc[op.op_class] + s if op.op_class in acc else s
        return acc

    def stage_ops(self, stage: Stage) -> tuple[OpSpec, ...]:
        return tuple(op for op in self.ops if op.stage is stage)

    def forward_ops(self) -> tuple[OpSpec, ...]:
        return self.stage_ops(Stage.FORWARD)

    def backward_ops(self) -> tuple[OpSpec, ...]:
        return tuple(op for op in self.ops if op.stage.is_backward)

    # -- transformation helpers -------------------------------------------------
    def replace_ops(self, removed: Iterable[str], added: Iterable[OpSpec]) -> "DataflowGraph":
        """A new graph with ``removed`` op names replaced by ``added`` ops.

        The added ops are inserted at the position of the first removed op,
        preserving topological validity for the fusion transformations used
        here (fusions always replace a contiguous producer/consumer chain).
        """
        removed_set = set(removed)
        missing = removed_set - set(self._ops)
        if missing:
            raise KeyError(f"cannot remove unknown ops: {sorted(missing)}")
        new = DataflowGraph(self.name)
        for t in self._graph_inputs.values():
            new.add_input(t)
        added_list = list(added)
        inserted = False
        for name in self._op_order:
            if name in removed_set:
                if not inserted:
                    for op in added_list:
                        new.add_op(op)
                    inserted = True
                continue
            new.add_op(self._ops[name])
        if not inserted:
            for op in added_list:
                new.add_op(op)
        return new

    def subgraph(self, op_names: Iterable[str], name: str | None = None) -> "DataflowGraph":
        """Induced subgraph over the given ops (inputs become graph inputs)."""
        keep = [n for n in self._op_order if n in set(op_names)]
        produced = {t.name for n in keep for t in self._ops[n].outputs}
        new = DataflowGraph(name or f"{self.name}-sub")
        for n in keep:
            for t in self._ops[n].inputs:
                if t.name not in produced:
                    new.add_input(self._containers[t.name])
        for n in keep:
            new.add_op(self._ops[n])
        return new

    # -- rendering -----------------------------------------------------------
    def describe(self, env: DimEnv) -> str:
        """Human-readable dump with flop / flop-per-word annotations (Fig. 2 style)."""
        lines = [f"DataflowGraph {self.name!r}: {len(self)} ops"]
        for op in self.ops:
            s = op.summary(env)
            lines.append(
                f"  {op.op_class.marker} {op.name:<24s} "
                f"flop={s.flop / 1e9:8.3f}G  io={s.words_moved / 1e6:8.2f}Mw  "
                f"flop/word={s.flop_per_word:8.2f}  [{op.movement_class(env)}]"
            )
        return "\n".join(lines)
