"""Operator nodes of the dataflow IR.

Each :class:`OpSpec` is a *logical* operator (Sec. III-A: "An operator may be
implemented as multiple compute kernels, but is logically one operation for
our analysis") carrying enough structure for the paper's analyses:

* its **class** (Sec. III-B): tensor contraction △, statistical
  normalization ⬜, or element-wise ○;
* its **iteration space** (drives fusion legality, Sec. IV);
* analytic **flop** and **data movement** counts (drive the roofline /
  MUE analyses, Secs. III-A, III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from .dims import DimEnv
from .iteration_space import IterationSpace
from .tensor import TensorSpec

__all__ = ["OpClass", "Stage", "OpSpec", "FlopIoSummary"]


class OpClass(Enum):
    """The paper's three-way operator classification (Sec. III-B)."""

    TENSOR_CONTRACTION = "tensor contraction"
    STAT_NORMALIZATION = "statistical normalization"
    ELEMENTWISE = "element-wise"

    @property
    def marker(self) -> str:
        """The glyph used in the paper's tables/figures."""
        return {
            OpClass.TENSOR_CONTRACTION: "△",  # △
            OpClass.STAT_NORMALIZATION: "⬜",  # ⬜
            OpClass.ELEMENTWISE: "○",  # ○
        }[self]


class Stage(Enum):
    """Training stage an operator belongs to (Sec. II-A)."""

    FORWARD = "forward"
    BACKWARD_DX = "dX"
    BACKWARD_DW = "dW"

    @property
    def is_backward(self) -> bool:
        return self is not Stage.FORWARD


@dataclass(frozen=True)
class FlopIoSummary:
    """Flop and data-movement totals for one operator or a set of them."""

    flop: float
    input_words: int
    output_words: int
    bytes_moved: int

    @property
    def words_moved(self) -> int:
        return self.input_words + self.output_words

    @property
    def flop_per_word(self) -> float:
        """The paper's flop/IO ratio (Figs. 1b, 2), flop per word moved."""
        words = self.words_moved
        return self.flop / words if words else float("inf")

    def __add__(self, other: "FlopIoSummary") -> "FlopIoSummary":
        return FlopIoSummary(
            flop=self.flop + other.flop,
            input_words=self.input_words + other.input_words,
            output_words=self.output_words + other.output_words,
            bytes_moved=self.bytes_moved + other.bytes_moved,
        )


@dataclass(frozen=True)
class OpSpec:
    """One logical operator in the dataflow graph.

    Parameters
    ----------
    name:
        Unique operator name within its graph (e.g. ``"QKT"``).
    op_class:
        The Sec. III-B class.
    inputs / outputs:
        Tensor specifications.  All data movement accounting assumes each
        input is read once and each output written once (the paper's edge
        volumes are exact access volumes in the SDFG).
    ispace:
        Iteration space; drives fusion legality and point counts.
    flop_per_point:
        Useful flop per iteration point (2 for a multiply-accumulate
        contraction; 0 for ReLU, which the paper counts as flop-free).
    einsum:
        For contractions, the einsum specification (e.g. ``"phi,ibj->phbj"``).
    stage:
        forward / dX / dW, for Table III row grouping.
    fused_from:
        Names of the original operators if this op is a fusion product.
    kernel_label:
        Paper kernel name when this op maps onto one of the named fused
        kernels (``AIB``, ``SM``, ...); empty otherwise.
    is_view:
        True for zero-cost aliasing nodes (slices of stacked tensors,
        re-indexed reads of the same storage).  Views never become kernels:
        they contribute no flop and no data movement.
    members:
        For fusion products: the original operators this kernel executes.
        When present, the flop count is the sum over members (the fused
        kernel performs the same computation), while the input/output lists
        — and hence the IO accounting — reflect the *reduced* data movement
        with interior edges removed.
    """

    name: str
    op_class: OpClass
    inputs: tuple[TensorSpec, ...]
    outputs: tuple[TensorSpec, ...]
    ispace: IterationSpace
    flop_per_point: float = 1.0
    einsum: str | None = None
    stage: Stage = Stage.FORWARD
    fused_from: tuple[str, ...] = ()
    kernel_label: str = ""
    is_view: bool = False
    members: tuple["OpSpec", ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operator name must be non-empty")
        if not self.outputs:
            raise ValueError(f"operator {self.name!r} must have at least one output")
        if not isinstance(self.inputs, tuple):
            object.__setattr__(self, "inputs", tuple(self.inputs))
        if not isinstance(self.outputs, tuple):
            object.__setattr__(self, "outputs", tuple(self.outputs))
        if self.flop_per_point < 0:
            raise ValueError("flop_per_point must be non-negative")
        if self.op_class is OpClass.TENSOR_CONTRACTION and self.einsum is None:
            raise ValueError(f"contraction {self.name!r} requires an einsum spec")

    # -- structure -----------------------------------------------------------
    @property
    def input_names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.inputs)

    @property
    def output_names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.outputs)

    @property
    def is_fused(self) -> bool:
        return bool(self.fused_from)

    def with_stage(self, stage: Stage) -> "OpSpec":
        return replace(self, stage=stage)

    # -- analytic counts -------------------------------------------------------
    def flops(self, env: DimEnv) -> float:
        """Required floating point operations (the paper's "Gflop" column)."""
        if self.is_view:
            return 0.0
        if self.members:
            return sum(m.flops(env) for m in self.members)
        return self.flop_per_point * self.ispace.size(env)

    def input_words(self, env: DimEnv) -> int:
        if self.is_view:
            return 0
        return sum(t.volume(env) for t in self.inputs)

    def output_words(self, env: DimEnv) -> int:
        if self.is_view:
            return 0
        return sum(t.volume(env) for t in self.outputs)

    def io_words(self, env: DimEnv) -> int:
        """Total words moved, assuming perfect reuse within the operator.

        This is the paper's per-edge access volume: each input tensor is read
        once from main memory and each output written once.  It is also the
        I/O lower bound ``Q`` used by the MUE metric for memory-bound ops.
        """
        return self.input_words(env) + self.output_words(env)

    def io_bytes(self, env: DimEnv) -> int:
        if self.is_view:
            return 0
        return sum(t.nbytes(env) for t in self.inputs) + sum(
            t.nbytes(env) for t in self.outputs
        )

    def summary(self, env: DimEnv) -> FlopIoSummary:
        return FlopIoSummary(
            flop=self.flops(env),
            input_words=self.input_words(env),
            output_words=self.output_words(env),
            bytes_moved=self.io_bytes(env),
        )

    def flop_per_word(self, env: DimEnv) -> float:
        return self.summary(env).flop_per_word

    def movement_class(self, env: DimEnv) -> str:
        """Coarse flop-vs-IO label used in Figs. 1b / 2 legends.

        Returns one of ``"IO > flop"``, ``"IO ~ flop"``, ``"IO < flop"``.
        """
        ratio = self.flop_per_word(env)
        if ratio < 0.75:
            return "IO > flop"
        if ratio <= 4.0:
            return "IO ~ flop"
        return "IO < flop"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ins = ", ".join(self.input_names)
        outs = ", ".join(self.output_names)
        return f"{self.op_class.marker} {self.name}({ins}) -> {outs}"
