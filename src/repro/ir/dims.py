"""Named dimensions and dimension environments.

Every tensor in the dataflow IR is described by an ordered tuple of *named*
dimensions ("axes").  Dimension names follow the paper's notation:

=====  =============================================  BERT-large value
name   meaning                                        (paper Sec. III-D)
=====  =============================================  =================
``b``  mini-batch size                                8
``j``  input (query) sequence length                  512
``k``  output (key/value) sequence length             512
``h``  number of attention heads                      16
``p``  per-head query/key projection size             64
``w``  per-head value projection size                 64
``i``  embedding size (= h * p)                       1024
``u``  feed-forward intermediate size (= 4 * i)       4096
=====  =============================================  =================

A :class:`DimEnv` binds names to concrete sizes so analytic flop / data
movement counts can be evaluated.  Keeping sizes out of the structural IR
lets the same graph be evaluated at several problem sizes (e.g. the paper's
alternate ``B=96, L=128`` configuration in Sec. VI-C).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field
from math import prod

__all__ = [
    "DimEnv",
    "bert_large_dims",
    "bert_alternate_dims",
    "small_test_dims",
]


@dataclass(frozen=True)
class DimEnv(Mapping[str, int]):
    """An immutable mapping from dimension names to concrete sizes.

    Behaves like a read-only ``dict`` and adds convenience helpers used
    throughout flop/IO accounting.
    """

    sizes: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, size in self.sizes.items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"dimension name must be a non-empty str, got {name!r}")
            if not isinstance(size, int) or size <= 0:
                raise ValueError(f"dimension {name!r} must have a positive int size, got {size!r}")
        # Freeze the underlying mapping so hashing / sharing is safe.
        object.__setattr__(self, "sizes", dict(self.sizes))

    # -- Mapping protocol --------------------------------------------------
    def __getitem__(self, name: str) -> int:
        try:
            return self.sizes[name]
        except KeyError:
            raise KeyError(
                f"unknown dimension {name!r}; known: {sorted(self.sizes)}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self.sizes)

    def __len__(self) -> int:
        return len(self.sizes)

    def __hash__(self) -> int:
        # Cached: DimEnv keys lru_cache lookups on sweep hot paths, and the
        # O(n log n) canonicalization would otherwise rerun per lookup.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash(tuple(sorted(self.sizes.items())))
            object.__setattr__(self, "_hash", h)
        return h

    # -- helpers ------------------------------------------------------------
    def volume(self, dims: Iterable[str]) -> int:
        """Number of elements in a tensor with the given dimensions."""
        return prod(self[d] for d in dims)

    def shape(self, dims: Iterable[str]) -> tuple[int, ...]:
        """Concrete shape tuple for an ordered dimension list."""
        return tuple(self[d] for d in dims)

    def with_sizes(self, **overrides: int) -> "DimEnv":
        """Return a copy with some sizes replaced (used for re-tuning runs)."""
        merged = dict(self.sizes)
        merged.update(overrides)
        return DimEnv(merged)

    def subset(self, dims: Iterable[str]) -> "DimEnv":
        return DimEnv({d: self[d] for d in dims})


def bert_large_dims(batch: int = 8, seq: int = 512) -> DimEnv:
    """The paper's running example: BERT-large encoder dimensions.

    ``B=8, J=K=512, H=16, P=W=64, I=1024, U=4096`` (Sec. III-D).
    """
    heads = 16
    proj = 64
    embed = heads * proj
    return DimEnv(
        {
            "b": batch,
            "j": seq,
            "k": seq,
            "h": heads,
            "p": proj,
            "w": proj,
            "i": embed,
            "u": 4 * embed,
            # Stacking dims for algebraic fusion (Sec. IV-D):
            # "c" stacks Q/K/V projections, "d" stacks Q/K only.
            "c": 3,
            "d": 2,
        }
    )


def bert_alternate_dims() -> DimEnv:
    """The Sec. VI-C re-tuned configuration: ``B=96, L=128``."""
    return bert_large_dims(batch=96, seq=128)


def small_test_dims() -> DimEnv:
    """Tiny dimensions for numerical tests (gradcheck-friendly)."""
    return DimEnv(
        {"b": 2, "j": 5, "k": 5, "h": 2, "p": 3, "w": 3, "i": 6, "u": 8, "c": 3, "d": 2}
    )
