"""Dataflow intermediate representation (the reproduction's SDFG analog).

The IR provides the analyzable training-process representation that Step 1
of the paper's recipe requires: named-dimension tensors, class-tagged
operators with iteration spaces, and a dataflow graph whose edges carry
exact data-movement volumes.
"""

from .analysis import (
    OpAnnotation,
    annotate,
    class_flop_fractions,
    data_movement_reduction,
    unique_io_words,
)
from .export import to_dot, to_json
from .dims import DimEnv, bert_alternate_dims, bert_large_dims, small_test_dims
from .dtypes import FP16, FP32, FP64, DType
from .graph import DataflowGraph, Edge, GraphValidationError
from .iteration_space import Compatibility, IterationSpace
from .operator import FlopIoSummary, OpClass, OpSpec, Stage
from .tensor import TensorSpec
from .views import view_spec

__all__ = [
    "view_spec",
    "to_dot",
    "to_json",
    "Compatibility",
    "DataflowGraph",
    "DimEnv",
    "DType",
    "Edge",
    "FlopIoSummary",
    "FP16",
    "FP32",
    "FP64",
    "GraphValidationError",
    "IterationSpace",
    "OpAnnotation",
    "OpClass",
    "OpSpec",
    "Stage",
    "TensorSpec",
    "annotate",
    "bert_alternate_dims",
    "bert_large_dims",
    "class_flop_fractions",
    "data_movement_reduction",
    "small_test_dims",
    "unique_io_words",
]
