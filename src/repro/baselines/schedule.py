"""Framework schedules: apply a policy to a graph, produce timed kernels.

A :class:`Schedule` is the list of kernels a framework actually launches
for one training iteration of the layer, each with its configuration,
predicted time, achieved %-of-peak and MUE — i.e. one side of Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.autotuner.tuner import SweepResult
from repro.configsel.selector import SelectedConfiguration, select_configurations
from repro.engine import sweep_graph
from repro.hardware.cost_model import CostModel
from repro.hardware.mue import op_mue
from repro.ir.dims import DimEnv
from repro.ir.graph import DataflowGraph
from repro.ir.operator import OpClass, OpSpec
from repro.layouts.config import OpConfig

from .policy import FrameworkPolicy

__all__ = ["ScheduledKernel", "Schedule", "build_schedule"]


@dataclass(frozen=True)
class ScheduledKernel:
    """One launched kernel with its predicted performance."""

    op: OpSpec
    config: OpConfig | None
    time_us: float
    flop: float
    io_bytes: int
    percent_peak: float
    mue: float

    @property
    def name(self) -> str:
        return self.op.name

    @property
    def kernel_label(self) -> str:
        return self.op.kernel_label or self.op.name


@dataclass
class Schedule:
    """All kernels one framework launches for the layer's fwd+bwd pass."""

    framework: str
    graph: DataflowGraph
    kernels: list[ScheduledKernel] = field(default_factory=list)
    extra_us: float = 0.0  # inserted transposes etc.

    @property
    def total_us(self) -> float:
        return sum(k.time_us for k in self.kernels) + self.extra_us

    def stage_us(self, *, backward: bool) -> float:
        t = sum(
            k.time_us for k in self.kernels if k.op.stage.is_backward == backward
        )
        if backward:
            t += self.extra_backward_us
        else:
            t += self.extra_forward_us
        return t

    # Transposes are attributed to the stage of the op they precede; the
    # builder fills these in.
    extra_forward_us: float = 0.0
    extra_backward_us: float = 0.0

    def class_runtime(self) -> dict[OpClass, float]:
        """Runtime per operator class (Table I's "% Runtime" numerator)."""
        acc: dict[OpClass, float] = {}
        for k in self.kernels:
            acc[k.op.op_class] = acc.get(k.op.op_class, 0.0) + k.time_us
        return acc

    def kernel_by_name(self, name: str) -> ScheduledKernel:
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(f"no kernel {name!r} in schedule {self.framework!r}")


def _kernel_record(
    op: OpSpec,
    config: OpConfig | None,
    time_us: float,
    env: DimEnv,
    cost: CostModel,
) -> ScheduledKernel:
    flop = op.flops(env)
    io = op.io_bytes(env)
    return ScheduledKernel(
        op=op,
        config=config,
        time_us=time_us,
        flop=flop,
        io_bytes=io,
        percent_peak=cost.percent_of_peak(op, flop, time_us),
        mue=op_mue(op, time_us, env, cost.gpu),
    )


def build_schedule(
    graph: DataflowGraph,
    policy: FrameworkPolicy,
    env: DimEnv,
    cost: CostModel | None = None,
    *,
    sweeps: dict[str, SweepResult] | None = None,
    cap: int | None = 600,
    seed: int = 0x5EED,
    jobs: int | None = None,
    fast: bool | None = None,
    register=None,
) -> Schedule:
    """Time every kernel of ``graph`` under the framework's policy.

    ``graph`` must already reflect the policy's fusion choices (use
    :func:`repro.baselines.frameworks.framework_schedule` for the full
    pipeline from the policy alone).  Whole-graph sweeps route through the
    engine scheduler; ``jobs`` fans cold sweeps out over worker processes
    without changing any result.  ``fast`` picks the configuration-selection
    pipeline (vectorized by default, scalar reference with ``fast=False`` /
    ``REPRO_CONFIGSEL_FAST=0``); both produce bit-identical schedules.
    ``register`` (a :class:`~repro.registry.ScheduleRegistry` or ``True``
    for the process-active one) persists the ``"selected"``-mode selection
    in the schedule registry; other layout modes have no global selection
    to register and ignore it.
    """
    cost = cost or CostModel()
    schedule = Schedule(framework=policy.name, graph=graph)

    if policy.layout_mode == "selected":
        if sweeps is None:
            sweeps = sweep_graph(graph, env, cost, cap=cap, seed=seed, jobs=jobs)
        sel: SelectedConfiguration = select_configurations(
            graph, env, cost, sweeps=sweeps, cap=cap, seed=seed, fast=fast,
            register=register,
        )
        for op in graph.ops:
            if op.is_view:
                continue
            m = sel.chosen[op.name]
            time_us = m.total_us + policy.per_kernel_overhead_us
            schedule.kernels.append(_kernel_record(op, m.config, time_us, env, cost))
        fwd_extra = sum(
            t.time_us
            for t in sel.transposes
            if not graph.op(t.before_op).stage.is_backward
        )
        schedule.extra_forward_us = fwd_extra
        schedule.extra_backward_us = sel.transpose_us - fwd_extra
        schedule.extra_us = sel.transpose_us
        return schedule

    if policy.layout_mode == "quantile":
        if sweeps is None:
            sweeps = sweep_graph(graph, env, cost, cap=cap, jobs=jobs)
        for op in graph.ops:
            if op.is_view:
                continue
            sweep = sweeps[op.name]
            q = (
                policy.contraction_quantile
                if op.op_class is OpClass.TENSOR_CONTRACTION
                else policy.kernel_quantile
            )
            m = sweep.at_quantile(q)
            time_us = m.total_us + policy.per_kernel_overhead_us
            schedule.kernels.append(_kernel_record(op, m.config, time_us, env, cost))
        return schedule

    # default layouts
    from repro.layouts.configspace import default_config

    for op in graph.ops:
        if op.is_view:
            continue
        config = default_config(op)
        kt = cost.time_op(op, config, env)
        if kt is None:
            raise RuntimeError(f"default layout infeasible for {op.name!r}")
        time_us = kt.total_us + policy.per_kernel_overhead_us
        schedule.kernels.append(_kernel_record(op, config, time_us, env, cost))
    return schedule
