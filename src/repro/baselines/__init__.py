"""Simulated framework baselines (PyTorch, TF+XLA, DeepSpeed, cuDNN, Ours)."""

from .frameworks import (
    CudnnMHAResult,
    cudnn_mha_times,
    framework_graph,
    framework_schedule,
)
from .policy import ALL_FRAMEWORKS, DEEPSPEED, OURS, PYTORCH, TF_XLA, FrameworkPolicy
from .schedule import Schedule, ScheduledKernel, build_schedule

__all__ = [
    "ALL_FRAMEWORKS",
    "CudnnMHAResult",
    "DEEPSPEED",
    "FrameworkPolicy",
    "OURS",
    "PYTORCH",
    "Schedule",
    "ScheduledKernel",
    "TF_XLA",
    "build_schedule",
    "cudnn_mha_times",
    "framework_graph",
    "framework_schedule",
]
