"""Framework policies: what each baseline does and does not optimize.

The paper's Sec. VI-C explains each framework's behaviour precisely; the
baselines model those *policies* on the shared cost model rather than the
codebases themselves (see DESIGN.md, Substitutions):

* **PyTorch** — no element-wise/normalization fusion (every logical operator
  is its own kernel), but it *does* implement the algebraic Q/K/V fusion and
  uses good contraction layouts ("PyTorch's data layouts enable faster
  tensor contractions and it implements the algebraic fusion, but it has
  higher overheads for other operators").  GEMM algorithms come from the
  library heuristic.
* **TensorFlow+XLA** — automatic kernel fusion comparable to ours, but no
  algebraic MHA fusion and suboptimal contraction layouts.
* **DeepSpeed** — manually fused and tuned specifically for BERT: the paper
  kernel set, algebraic fusion, near-best layouts; small remaining gap.
* **cuDNN MHA** — the experimental ``cudnnMultiHeadAttnForward``: launches
  very large numbers of softmax kernels, which dominate runtime.
* **Ours** — Steps 1-4 of the recipe: paper fusion + algebraic fusion +
  exhaustive tuning + global SSSP configuration selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.transformer.graph_builder import QKVFusion

__all__ = ["FrameworkPolicy", "PYTORCH", "TF_XLA", "DEEPSPEED", "OURS", "ALL_FRAMEWORKS"]

FusionMode = Literal["none", "paper", "greedy"]
LayoutMode = Literal["default", "quantile", "selected"]


@dataclass(frozen=True)
class FrameworkPolicy:
    """One framework's optimization policy."""

    name: str
    fusion: FusionMode
    qkv_fusion: QKVFusion
    #: How per-operator configurations are chosen.
    layout_mode: LayoutMode
    #: For ``layout_mode="quantile"``: position in each operator's sorted
    #: runtime distribution (0.0 = best possible, 1.0 = worst).
    contraction_quantile: float = 0.0
    kernel_quantile: float = 0.0
    #: Per-kernel framework overhead in microseconds (dispatcher, op setup;
    #: "including unoptimized framework overheads", Sec. VI-C).
    per_kernel_overhead_us: float = 0.0

    def __post_init__(self) -> None:
        for q in (self.contraction_quantile, self.kernel_quantile):
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile {q} out of [0, 1]")
        if self.per_kernel_overhead_us < 0:
            raise ValueError("overhead must be non-negative")


PYTORCH = FrameworkPolicy(
    name="PyTorch",
    fusion="none",
    qkv_fusion="qkv",  # torch.nn.MultiheadAttention stacks its in-proj weights
    layout_mode="quantile",
    contraction_quantile=0.06,  # good layouts, heuristic GEMM algorithm
    kernel_quantile=0.22,  # stock CUDA kernels: generic, mid-distribution
    per_kernel_overhead_us=3.0,
)

TF_XLA = FrameworkPolicy(
    name="TF+XLA",
    fusion="paper",  # XLA finds the same element-wise fusions
    qkv_fusion="unfused",  # but not the algebraic MHA fusion
    layout_mode="quantile",
    contraction_quantile=0.20,  # subpar data layouts for tensor contractions
    kernel_quantile=0.08,
    per_kernel_overhead_us=1.5,
)

DEEPSPEED = FrameworkPolicy(
    name="DeepSpeed",
    fusion="paper",
    qkv_fusion="qkv",
    layout_mode="quantile",
    contraction_quantile=0.07,  # manually tuned, but fixed layouts per kernel
    kernel_quantile=0.12,
    per_kernel_overhead_us=0.8,
)

OURS = FrameworkPolicy(
    name="Ours",
    fusion="paper",
    qkv_fusion="qkv",
    layout_mode="selected",  # global SSSP configuration selection
    per_kernel_overhead_us=0.3,  # thin C++/CUDA operator integration
)

ALL_FRAMEWORKS = (PYTORCH, TF_XLA, DEEPSPEED, OURS)
