"""End-to-end framework simulations: graph construction through timing.

``framework_schedule`` runs a policy's whole pipeline — builder variant,
fusion pass, configuration policy — and returns the timed
:class:`~repro.baselines.schedule.Schedule`.  ``cudnn_mha_times`` models the
cuDNN multi-head-attention baseline of Table IV, whose runtime is dominated
by enormous numbers of small softmax kernel launches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fusion.encoder_kernels import apply_paper_fusion
from repro.hardware.cost_model import CostModel
from repro.ir.dims import DimEnv
from repro.ir.graph import DataflowGraph
from repro.transformer.graph_builder import build_encoder_graph, build_mha_graph

from .policy import FrameworkPolicy
from .schedule import Schedule, build_schedule

__all__ = ["framework_schedule", "framework_graph", "cudnn_mha_times", "CudnnMHAResult"]


def framework_graph(
    policy: FrameworkPolicy,
    env: DimEnv,
    *,
    model: str = "encoder",
    include_backward: bool = True,
) -> DataflowGraph:
    """The dataflow graph a framework actually executes (fusion applied)."""
    if model == "encoder":
        graph = build_encoder_graph(
            qkv_fusion=policy.qkv_fusion, include_backward=include_backward
        )
    elif model == "mha":
        graph = build_mha_graph(
            qkv_fusion=policy.qkv_fusion, include_backward=include_backward
        )
    else:
        raise ValueError(f"unknown model {model!r}")
    if policy.fusion == "paper":
        graph = apply_paper_fusion(graph, env)
    elif policy.fusion == "greedy":
        from repro.fusion.fuser import fuse_greedy

        graph = fuse_greedy(graph, env)
    return graph


def framework_schedule(
    policy: FrameworkPolicy,
    env: DimEnv,
    cost: CostModel | None = None,
    *,
    model: str = "encoder",
    include_backward: bool = True,
    cap: int | None = 600,
    jobs: int | None = None,
    fast: bool | None = None,
) -> Schedule:
    """Build the policy's graph and time it (Tables IV and V)."""
    cost = cost or CostModel()
    graph = framework_graph(
        policy, env, model=model, include_backward=include_backward
    )
    return build_schedule(graph, policy, env, cost, cap=cap, jobs=jobs, fast=fast)


@dataclass(frozen=True)
class CudnnMHAResult:
    """The cuDNN MHA baseline: forward and backward times."""

    forward_us: float
    backward_us: float
    forward_kernels: int
    backward_kernels: int


def cudnn_mha_times(env: DimEnv, cost: CostModel | None = None) -> CudnnMHAResult:
    """Model cuDNN's experimental multi-head attention (Table IV).

    The paper profiles ``cudnnMultiHeadAttnForward`` and finds "its
    implementation launches very large numbers of softmax kernels, which
    dominate the runtime".  We model the projections and contractions as
    competent GEMMs but the softmax as one kernel per (batch, head,
    query-position) row — B x H x J launches forward (and ~2x that backward
    for the recomputation the profile shows), each paying launch latency on
    a tiny row of work.
    """
    cost = cost or CostModel()
    graph = build_mha_graph(qkv_fusion="unfused", include_backward=True)
    from repro.ir.operator import OpClass

    fwd_gemm = 0.0
    bwd_gemm = 0.0
    for op in graph.ops:
        if op.is_view or op.op_class is not OpClass.TENSOR_CONTRACTION:
            continue
        kt = cost.time_op(op, None, env)
        if kt is None:  # pragma: no cover - default layouts always map
            continue
        if op.stage.is_backward:
            bwd_gemm += kt.total_us
        else:
            fwd_gemm += kt.total_us

    rows = env["b"] * env["h"] * env["j"]
    # Each softmax row kernel: launch + a negligible body (K elements).
    row_bytes = 2 * env["k"] * 2  # read + write one fp16 row
    row_body_us = 1e6 * row_bytes / (cost.gpu.mem_bandwidth * 0.05)
    per_row_us = cost.gpu.kernel_launch_us * 0.4 + row_body_us
    softmax_fwd = rows * per_row_us
    softmax_bwd = 2 * rows * per_row_us

    # Bias/dropout kernels, unfused.
    other_fwd = 150.0
    other_bwd = 200.0
    return CudnnMHAResult(
        forward_us=fwd_gemm + softmax_fwd + other_fwd,
        backward_us=bwd_gemm + softmax_bwd + other_bwd,
        forward_kernels=4 + rows,
        backward_kernels=10 + 2 * rows,
    )
