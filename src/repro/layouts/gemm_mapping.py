"""Mapping einsum contractions onto (batched) GEMM calls.

Per Sec. III-B the paper restricts tensor contractions to shapes that
cuBLAS supports: plain and batched matrix-matrix multiplication.  Given an
einsum and concrete operand layouts, this module decides whether the triple
maps to a single GEMM call and extracts its ``(M, N, K, batch, transA,
transB)`` description — the quantities Fig. 4's tiles are labeled with.

Dimension roles for ``C = A · B``:

* **batch** dims appear in A, B and C (the ``B`` of a batched MMM);
* **M** dims appear in A and C only;
* **N** dims appear in B and C only;
* **K** dims appear in A and B only (contracted).

A layout triple is GEMM-mappable iff every operand's dims split into three
*contiguous blocks* — batch, rows, cols — each in a consistent intra-group
order across operands.  The blocks may appear in any order: strided batched
GEMM (``cublasGemmStridedBatchedEx``) takes an arbitrary leading dimension
and batch stride, so e.g. ``kk[p,h,b,k]`` with batch ``(h,b)`` is a valid
operand (rows ``p`` with stride ``h*b*k``, batch stride ``k``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from math import prod

from repro.ir.dims import DimEnv

from .layout import Layout
from repro.ops.einsum_utils import EinsumSpec, parse_einsum

__all__ = [
    "GemmShape",
    "DimRoles",
    "classify_dims",
    "feasible_triple_structures",
    "map_to_gemm",
    "default_gemm_shape",
]


@dataclass(frozen=True)
class DimRoles:
    """Role assignment of every dim of a two-operand contraction."""

    batch: tuple[str, ...]
    m: tuple[str, ...]
    n: tuple[str, ...]
    k: tuple[str, ...]


@dataclass(frozen=True)
class GemmShape:
    """One (batched) GEMM call: C[M,N] += A[M,K] · B[K,N] per batch element."""

    m: int
    n: int
    k: int
    batch: int
    trans_a: bool
    trans_b: bool

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k * self.batch

    def canonical(self) -> "GemmShape":
        """Shape with M >= N, as the paper labels its Fig. 4 tiles.

        Swapping operand order of a GEMM swaps M and N; Fig. 4 merges both
        orders into one tile labeled with ``M > N``.
        """
        if self.m >= self.n:
            return self
        return GemmShape(
            m=self.n, n=self.m, k=self.k, batch=self.batch,
            trans_a=not self.trans_b, trans_b=not self.trans_a,
        )

    def label(self) -> str:
        return f"M: {self.m}, N: {self.n}, K: {self.k}, B: {self.batch}"


def classify_dims(spec: EinsumSpec | str) -> DimRoles:
    """Assign batch/M/N/K roles to every dim of a 2-operand einsum."""
    if isinstance(spec, str):
        spec = parse_einsum(spec)
    return _classify_dims_cached(spec)


@lru_cache(maxsize=4096)
def _classify_dims_cached(spec: EinsumSpec) -> DimRoles:
    if spec.num_inputs != 2:
        raise ValueError(f"GEMM mapping requires 2 operands, got {spec.num_inputs}")
    a, b = (set(s) for s in spec.input_subscripts)
    c = set(spec.output_subscript)
    order = spec.output_subscript + "".join(spec.reduction_dims)

    def pick(pred) -> tuple[str, ...]:
        return tuple(d for d in order if pred(d))

    batch = pick(lambda d: d in a and d in b and d in c)
    m_dims = pick(lambda d: d in a and d not in b and d in c)
    n_dims = pick(lambda d: d in b and d not in a and d in c)
    k_dims = pick(lambda d: d in a and d in b and d not in c)
    leftover = (a | b | c) - set(batch) - set(m_dims) - set(n_dims) - set(k_dims)
    if leftover:
        raise ValueError(
            f"einsum {spec.spec!r} has dims {sorted(leftover)} that fit no GEMM role"
        )
    return DimRoles(batch=batch, m=m_dims, n=n_dims, k=k_dims)


@lru_cache(maxsize=65536)
def _matrix_view(layout: Layout, batch: tuple[str, ...], rows: tuple[str, ...],
                 cols: tuple[str, ...]) -> tuple[bool, bool] | None:
    """Check one operand is a (strided) batched 2-D matrix in this layout.

    The layout must decompose into up to three contiguous blocks — the batch
    group, the rows group, and the cols group — each in exactly the given
    intra-group order; the blocks themselves may appear in any order (the
    leading dimension and batch stride of a strided batched GEMM absorb the
    block permutation).  Returns ``(ok, transposed)`` where ``transposed``
    means the cols block is *outer* relative to the rows block (the matrix
    is stored column-major / needs ``op = T``); ``None`` if not mappable.
    """
    present_batch = tuple(d for d in batch if d in set(layout.dims))
    groups = [g for g in (present_batch, rows, cols) if g]
    # Every dim must belong to exactly one group.
    grouped = {d for g in groups for d in g}
    if grouped != set(layout.dims) or len(grouped) != len(layout.dims):
        return None
    # Each group must occupy consecutive positions in its declared order.
    for g in groups:
        if not layout.is_contiguous_group(g):
            return None
    if not rows or not cols:
        return (True, False)
    # Transposed iff the cols block starts before the rows block.
    rows_pos = layout.dims.index(rows[0])
    cols_pos = layout.dims.index(cols[0])
    return (True, cols_pos < rows_pos)


@lru_cache(maxsize=65536)
def _c_groups(
    spec: EinsumSpec, layout_c: Layout
) -> tuple[tuple[str, ...], tuple[str, ...], tuple[str, ...]]:
    """(M, N, batch) dim groups in C-layout order — structural, cacheable."""
    roles = _classify_dims_cached(spec)
    c_order = layout_c.dims
    m_group = tuple(d for d in c_order if d in set(roles.m))
    n_group = tuple(d for d in c_order if d in set(roles.n))
    batch_group = tuple(d for d in c_order if d in set(roles.batch))
    return m_group, n_group, batch_group


@lru_cache(maxsize=65536)
def _k_group(spec: EinsumSpec, layout_a: Layout) -> tuple[str, ...]:
    """K dim group in A-layout order — structural, cacheable."""
    roles = _classify_dims_cached(spec)
    return tuple(d for d in layout_a.dims if d in set(roles.k))


#: Env-independent result of mapping one layout triple: the (M, N, K, batch)
#: dim groups plus the operand transposition flags.
GemmStructure = tuple[
    tuple[str, ...], tuple[str, ...], tuple[str, ...], tuple[str, ...], bool, bool
]


def _map_structure(
    spec: EinsumSpec, layout_a: Layout, layout_b: Layout, layout_c: Layout
) -> GemmStructure | None:
    """The structural (size-independent) half of :func:`map_to_gemm`."""
    # Dim-role groups are pure functions of (spec, single layout); cached so
    # a layout-triple sweep computes each once instead of per triple.
    m_group, n_group, batch_group = _c_groups(spec, layout_c)
    k_group = _k_group(spec, layout_a)

    va = _matrix_view(layout_a, batch_group, m_group, k_group)
    vb = _matrix_view(layout_b, batch_group, k_group, n_group)
    vc = _matrix_view(layout_c, batch_group, m_group, n_group)
    if va is None or vb is None or vc is None:
        return None
    if vc[1]:
        # C stored N-major: equivalent to computing C^T = B^T A^T; swap roles.
        return _map_structure(
            _swapped(spec), layout_b, layout_a, layout_c_swapped(layout_c)
        )
    return (m_group, n_group, k_group, batch_group, va[1], vb[1])


@lru_cache(maxsize=65536)
def _shape_from_structure(structure: GemmStructure, env: DimEnv) -> GemmShape:
    """Instantiate a structural mapping at concrete dimension sizes.

    Cached: a sweep instantiates every feasible triple, but distinct triples
    collapse to few distinct dim-group structures, and repeated sweeps at
    the same sizes (delta re-sweeps, dedup probes) repeat them exactly.
    """
    m_group, n_group, k_group, batch_group, trans_a, trans_b = structure
    return GemmShape(
        m=prod(env[d] for d in m_group) if m_group else 1,
        n=prod(env[d] for d in n_group) if n_group else 1,
        k=prod(env[d] for d in k_group) if k_group else 1,
        batch=prod(env[d] for d in batch_group) if batch_group else 1,
        trans_a=trans_a,
        trans_b=trans_b,
    )


@lru_cache(maxsize=1024)
def feasible_triple_structures(
    spec: EinsumSpec,
    dims_a: tuple[str, ...],
    dims_b: tuple[str, ...],
    dims_c: tuple[str, ...],
):
    """All GEMM-mappable layout triples of a contraction, with structures.

    Feasibility and dim-group structure are independent of concrete sizes,
    so the full rank!^3 candidate scan runs once per einsum/operand-dims
    combination; sweeps at any ``DimEnv`` then instantiate shapes from the
    (much smaller) feasible list via :func:`_shape_from_structure`.
    Triples are returned in the canonical nested enumeration order
    (A-major, then B, then C) that the sweep paths rely on for stable-sort
    tie-breaking.
    """
    from .layout import all_layouts

    out = []
    for la in all_layouts(dims_a):
        for lb in all_layouts(dims_b):
            for lc in all_layouts(dims_c):
                structure = _map_structure(spec, la, lb, lc)
                if structure is not None:
                    out.append((la, lb, lc, structure))
    return tuple(out)


def map_to_gemm(
    spec: EinsumSpec | str,
    layout_a: Layout,
    layout_b: Layout,
    layout_c: Layout,
    env: DimEnv,
) -> GemmShape | None:
    """Map a contraction with concrete layouts to a GEMM, or None if illegal.

    The intra-group dim order is taken from operand C for M and N and from
    operand A for K; all operands must agree with it (consistent strides).
    """
    if isinstance(spec, str):
        spec = parse_einsum(spec)
    structure = _map_structure(spec, layout_a, layout_b, layout_c)
    if structure is None:
        return None
    return _shape_from_structure(structure, env)


@lru_cache(maxsize=4096)
def _swapped(spec: EinsumSpec) -> EinsumSpec:
    """The einsum with operand order swapped (same output)."""
    a, b = spec.input_subscripts
    return parse_einsum(f"{b},{a}->{spec.output_subscript}")


def layout_c_swapped(layout_c: Layout) -> Layout:
    """Identity helper kept for symmetry/readability of map_to_gemm."""
    return layout_c


def default_gemm_shape(spec: EinsumSpec | str, env: DimEnv) -> GemmShape:
    """The GEMM shape under default (spec-order) layouts.

    Used for Fig. 4 tile labels; raises if even the default layout triple is
    not mappable (does not happen for the paper's contractions).
    """
    if isinstance(spec, str):
        spec = parse_einsum(spec)
    roles = classify_dims(spec)
    return GemmShape(
        m=prod(env[d] for d in roles.m) if roles.m else 1,
        n=prod(env[d] for d in roles.n) if roles.n else 1,
        k=prod(env[d] for d in roles.k) if roles.k else 1,
        batch=prod(env[d] for d in roles.batch) if roles.batch else 1,
        trans_a=False,
        trans_b=False,
    )
