"""Data layouts, operator configurations, and GEMM mapping (paper Sec. V)."""

from .config import HEURISTIC_ALGORITHM, NUM_GEMM_ALGORITHMS, OpConfig
from .configspace import (
    contraction_configs,
    default_config,
    kernel_configs,
    op_configs,
)
from .gemm_mapping import (
    DimRoles,
    GemmShape,
    classify_dims,
    default_gemm_shape,
    map_to_gemm,
)
from .layout import Layout, all_layouts, transpose_cost_bytes

__all__ = [
    "DimRoles",
    "GemmShape",
    "HEURISTIC_ALGORITHM",
    "Layout",
    "NUM_GEMM_ALGORITHMS",
    "OpConfig",
    "all_layouts",
    "classify_dims",
    "contraction_configs",
    "default_config",
    "default_gemm_shape",
    "kernel_configs",
    "map_to_gemm",
    "op_configs",
    "transpose_cost_bytes",
]
