"""Physical data layouts: permutations of a tensor's named dimensions.

A :class:`Layout` orders a tensor's dims from outermost (slowest-varying) to
innermost (fastest-varying, i.e. contiguous in memory).  Layout choice is the
paper's Step 3 lever: it decides vectorization legality, memory coalescing,
and which (batched) GEMM shapes a contraction can map to (Sec. V).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import permutations
from typing import Iterator

from repro.ir.dims import DimEnv
from repro.ir.tensor import TensorSpec

__all__ = ["Layout", "all_layouts", "transpose_cost_bytes"]


@dataclass(frozen=True)
class Layout:
    """Physical dimension order, outermost first; ``dims[-1]`` is contiguous."""

    dims: tuple[str, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.dims, tuple):
            object.__setattr__(self, "dims", tuple(self.dims))
        if len(set(self.dims)) != len(self.dims):
            raise ValueError(f"layout has repeated dims: {self.dims}")

    # -- structure ------------------------------------------------------------
    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def contiguous_dim(self) -> str:
        """The innermost (unit-stride) dimension."""
        if not self.dims:
            raise ValueError("scalar layout has no contiguous dim")
        return self.dims[-1]

    def matches(self, spec: TensorSpec) -> bool:
        """Whether this layout is a permutation of the spec's dims."""
        return set(self.dims) == set(spec.dims) and len(self.dims) == spec.rank

    def strides(self, env: DimEnv) -> dict[str, int]:
        """Element strides per dim under concrete sizes."""
        strides: dict[str, int] = {}
        acc = 1
        for d in reversed(self.dims):
            strides[d] = acc
            acc *= env[d]
        return strides

    # -- feature queries used by the efficiency model ---------------------------
    def is_vectorizable_along(self, dim: str, env: DimEnv, vector_width: int = 8) -> bool:
        """True if vector loads of ``vector_width`` elements are legal on ``dim``.

        Requires the dim to be innermost (unit stride) and its extent to be a
        multiple of the vector width (128-bit vectors = 8 fp16 elements).
        """
        return dim == self.contiguous_dim and env[dim] % vector_width == 0

    def permutation_from(self, other: "Layout") -> tuple[int, ...]:
        """Axis permutation taking ``other``'s order to this order."""
        if set(other.dims) != set(self.dims):
            raise ValueError(f"layouts over different dims: {other.dims} vs {self.dims}")
        return tuple(other.dims.index(d) for d in self.dims)

    def group_positions(self, group: tuple[str, ...]) -> list[int]:
        """Positions of ``group``'s dims within this layout."""
        return [self.dims.index(d) for d in group if d in self.dims]

    def is_contiguous_group(self, group: tuple[str, ...]) -> bool:
        """Whether the dims of ``group`` occupy consecutive layout positions
        *in the same relative order* as given."""
        pos = self.group_positions(group)
        if len(pos) != len(group):
            return False
        return all(b == a + 1 for a, b in zip(pos, pos[1:]))

    def __str__(self) -> str:
        # Cached: layout strings key the efficiency model's hashes, and the
        # sweep hot loops stringify the same interned instances repeatedly.
        s = self.__dict__.get("_str")
        if s is None:
            s = "".join(self.dims)
            object.__setattr__(self, "_str", s)
        return s


@lru_cache(maxsize=4096)
def _all_layouts_tuple(dims: tuple[str, ...]) -> tuple[Layout, ...]:
    return tuple(Layout(perm) for perm in permutations(dims))


def all_layouts(dims: tuple[str, ...]) -> Iterator[Layout]:
    """All physical layouts (dim permutations) of a tensor.

    Layouts are frozen; the permutation tuple is cached per dim tuple so
    nested sweep loops don't rebuild rank! objects per iteration.
    """
    return iter(_all_layouts_tuple(tuple(dims)))


def transpose_cost_bytes(spec: TensorSpec, env: DimEnv) -> int:
    """Bytes moved by an out-of-place layout change: read + write the tensor."""
    return 2 * spec.nbytes(env)
