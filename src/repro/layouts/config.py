"""Operator configurations: the tunable knobs of Step 3.

An :class:`OpConfig` fixes everything the autotuner can vary for one
operator (Sec. V):

* a physical :class:`~repro.layouts.layout.Layout` per input and output;
* the **vectorization dimension** (Sec. V-B);
* the **warp-reduce / CUDA-thread dimension** for kernels that reduce or
  distribute over two candidate dims (BSB, EBSB, BDRB, BRD, BEI);
* the **GEMM algorithm** index for contractions (Sec. V-A: "we consider
  every possible cuBLAS algorithm for each layout").
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from .layout import Layout

__all__ = ["OpConfig", "NUM_GEMM_ALGORITHMS", "HEURISTIC_ALGORITHM"]

#: Number of simulated cuBLAS GEMM algorithms per shape (cublasGemmEx exposes
#: a comparable handful of tensor-op algorithms).
NUM_GEMM_ALGORITHMS = 8

#: Sentinel meaning "let the library's heuristic choose" (what frameworks do).
HEURISTIC_ALGORITHM = -1


@dataclass(frozen=True)
class OpConfig:
    """A complete parameterization of one operator implementation."""

    op_name: str
    input_layouts: tuple[Layout, ...]
    output_layouts: tuple[Layout, ...]
    vector_dim: str | None = None
    warp_reduce_dim: str | None = None
    algorithm: int = HEURISTIC_ALGORITHM
    use_tensor_cores: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.input_layouts, tuple):
            object.__setattr__(self, "input_layouts", tuple(self.input_layouts))
        if not isinstance(self.output_layouts, tuple):
            object.__setattr__(self, "output_layouts", tuple(self.output_layouts))
        if self.algorithm != HEURISTIC_ALGORITHM and not (
            0 <= self.algorithm < NUM_GEMM_ALGORITHMS
        ):
            raise ValueError(f"algorithm index {self.algorithm} out of range")

    # -- identity ---------------------------------------------------------------
    def key(self) -> str:
        """Stable, human-readable identity string (also seeds jitter)."""
        ins = "/".join(str(l) for l in self.input_layouts)
        outs = "/".join(str(l) for l in self.output_layouts)
        return (
            f"{self.op_name}|in:{ins}|out:{outs}|vec:{self.vector_dim}"
            f"|warp:{self.warp_reduce_dim}|algo:{self.algorithm}"
            f"|tc:{int(self.use_tensor_cores)}"
        )

    def seed(self, salt: str = "") -> int:
        """Deterministic 32-bit seed derived from the config identity."""
        return zlib.crc32((self.key() + "#" + salt).encode())

    def layout_of(self, tensor_name: str, tensor_names_in: tuple[str, ...],
                  tensor_names_out: tuple[str, ...]) -> Layout:
        """Look up the layout chosen for a named operand."""
        if tensor_name in tensor_names_in:
            return self.input_layouts[tensor_names_in.index(tensor_name)]
        if tensor_name in tensor_names_out:
            return self.output_layouts[tensor_names_out.index(tensor_name)]
        raise KeyError(f"{tensor_name!r} is not an operand of {self.op_name!r}")
