"""Enumeration of the feasible configuration space per operator (Sec. V).

For contractions the space is: every layout permutation triple that maps to
a (batched) GEMM, crossed with every GEMM algorithm and tensor-core mode.
For fused / normalization / element-wise kernels: all combinations of
per-operand layout permutations crossed with vectorization and warp-reduce
dimension choices.

Full Cartesian products explode for wide fused kernels (BRD touches four 3-D
tensors), so the generator supports deterministic subsampling to a size cap,
which preserves the distributional picture Figs. 4/5 rely on while keeping
sweeps tractable.  The cap and seed are explicit parameters; ``cap=None``
enumerates exhaustively.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterator, Sequence

from repro.ir.dims import DimEnv
from repro.ir.operator import OpClass, OpSpec
from repro.ops.einsum_utils import parse_einsum

from .config import NUM_GEMM_ALGORITHMS, OpConfig
from .gemm_mapping import map_to_gemm
from .layout import Layout, all_layouts

__all__ = [
    "contraction_configs",
    "kernel_configs",
    "op_configs",
    "default_config",
]


def contraction_configs(
    op: OpSpec,
    env: DimEnv,
    *,
    algorithms: Sequence[int] | None = None,
    tensor_core_modes: Sequence[bool] = (True, False),
) -> Iterator[OpConfig]:
    """All GEMM-mappable layout/algorithm/TC configurations of a contraction."""
    if op.op_class is not OpClass.TENSOR_CONTRACTION:
        raise ValueError(f"{op.name!r} is not a contraction")
    spec = parse_einsum(op.einsum)
    algos = list(algorithms) if algorithms is not None else list(range(NUM_GEMM_ALGORITHMS))
    a_spec, b_spec = op.inputs[0], op.inputs[1]
    c_spec = op.outputs[0]
    for la in all_layouts(a_spec.dims):
        for lb in all_layouts(b_spec.dims):
            for lc in all_layouts(c_spec.dims):
                if map_to_gemm(spec, la, lb, lc, env) is None:
                    continue
                for tc in tensor_core_modes:
                    for algo in algos:
                        yield OpConfig(
                            op_name=op.name,
                            input_layouts=(la, lb),
                            output_layouts=(lc,),
                            algorithm=algo,
                            use_tensor_cores=tc,
                        )


def kernel_configs(
    op: OpSpec,
    env: DimEnv,
    *,
    cap: int | None = 2000,
    seed: int = 0x5EED,
) -> Iterator[OpConfig]:
    """Layout/vector/warp configurations of a non-contraction kernel.

    Operands of rank <= 1 (biases, per-dim scales) have a single layout and
    are skipped in the product.  When the full product exceeds ``cap``,
    a deterministic uniform subsample of exactly ``cap`` configurations is
    produced (always including the all-default-layout point).
    """
    if op.op_class is OpClass.TENSOR_CONTRACTION:
        raise ValueError(f"use contraction_configs for {op.name!r}")
    operand_specs = list(op.inputs) + list(op.outputs)
    layout_choices: list[list[Layout]] = [
        list(all_layouts(t.dims)) if t.rank > 1 else [Layout(t.dims)]
        for t in operand_specs
    ]
    vec_choices: list[str | None] = list(op.ispace.all_dims) or [None]
    warp_choices: list[str | None] = (
        list(op.ispace.reduction) if op.ispace.reduction else [None]
    )

    sizes = [len(c) for c in layout_choices] + [len(vec_choices), len(warp_choices)]
    total = 1
    for s in sizes:
        total *= s

    def build(indices: Sequence[int]) -> OpConfig:
        n_in = len(op.inputs)
        layouts = [layout_choices[i][indices[i]] for i in range(len(layout_choices))]
        vec = vec_choices[indices[len(layout_choices)]]
        warp = warp_choices[indices[len(layout_choices) + 1]]
        return OpConfig(
            op_name=op.name,
            input_layouts=tuple(layouts[:n_in]),
            output_layouts=tuple(layouts[n_in:]),
            vector_dim=vec,
            warp_reduce_dim=warp,
        )

    if cap is None or total <= cap:
        for flat in itertools.product(*(range(s) for s in sizes)):
            yield build(flat)
        return

    rng = random.Random(seed)
    yield build([0] * len(sizes))  # always include the default point
    seen = {tuple([0] * len(sizes))}
    while len(seen) < cap:
        flat = tuple(rng.randrange(s) for s in sizes)
        if flat in seen:
            continue
        seen.add(flat)
        yield build(flat)


def op_configs(op: OpSpec, env: DimEnv, **kwargs) -> Iterator[OpConfig]:
    """Dispatch to the right enumerator for the operator's class."""
    if op.op_class is OpClass.TENSOR_CONTRACTION:
        return contraction_configs(op, env)
    return kernel_configs(op, env, **kwargs)


def default_config(op: OpSpec) -> OpConfig:
    """The untuned configuration: spec-order layouts, innermost-dim
    vectorization, first reduction dim for warp reduces, heuristic GEMM algo."""
    vec = op.ispace.all_dims[-1] if op.ispace.all_dims else None
    warp = op.ispace.reduction[0] if op.ispace.reduction else None
    return OpConfig(
        op_name=op.name,
        input_layouts=tuple(Layout(t.dims) for t in op.inputs),
        output_layouts=tuple(Layout(t.dims) for t in op.outputs),
        vector_dim=vec,
        warp_reduce_dim=warp,
    )
