"""Enumeration of the feasible configuration space per operator (Sec. V).

For contractions the space is: every layout permutation triple that maps to
a (batched) GEMM, crossed with every GEMM algorithm and tensor-core mode.
For fused / normalization / element-wise kernels: all combinations of
per-operand layout permutations crossed with vectorization and warp-reduce
dimension choices.

Full Cartesian products explode for wide fused kernels (BRD touches four 3-D
tensors), so the generator supports deterministic subsampling to a size cap,
which preserves the distributional picture Figs. 4/5 rely on while keeping
sweeps tractable.  The cap and seed are explicit parameters; ``cap=None``
enumerates exhaustively.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterator, Sequence

from repro.ir.dims import DimEnv
from repro.ir.operator import OpClass, OpSpec
from repro.ops.einsum_utils import parse_einsum

from .config import NUM_GEMM_ALGORITHMS, OpConfig
from .gemm_mapping import _shape_from_structure, feasible_triple_structures
from .layout import Layout, all_layouts

__all__ = [
    "contraction_triples",
    "contraction_configs",
    "kernel_space",
    "kernel_config_indices",
    "kernel_configs",
    "op_configs",
    "default_config",
]


def contraction_triples(op: OpSpec, env: DimEnv):
    """Feasible layout triples of a contraction, in enumeration order.

    Yields ``(layout_a, layout_b, layout_c, gemm_shape)`` for every layout
    triple that maps to a (batched) GEMM.  This is the single source of the
    contraction enumeration order: both the scalar reference sweep and the
    batched engine derive their config ordering from it, which is what makes
    their stable-sorted results bit-identical.  The feasibility scan is
    structural and cached per einsum (see
    :func:`repro.layouts.gemm_mapping.feasible_triple_structures`); only the
    concrete GEMM shapes are instantiated per env.
    """
    if op.op_class is not OpClass.TENSOR_CONTRACTION:
        raise ValueError(f"{op.name!r} is not a contraction")
    spec = parse_einsum(op.einsum)
    a_spec, b_spec = op.inputs[0], op.inputs[1]
    c_spec = op.outputs[0]
    for la, lb, lc, structure in feasible_triple_structures(
        spec, a_spec.dims, b_spec.dims, c_spec.dims
    ):
        yield la, lb, lc, _shape_from_structure(structure, env)


def contraction_configs(
    op: OpSpec,
    env: DimEnv,
    *,
    algorithms: Sequence[int] | None = None,
    tensor_core_modes: Sequence[bool] = (True, False),
) -> Iterator[OpConfig]:
    """All GEMM-mappable layout/algorithm/TC configurations of a contraction."""
    algos = list(algorithms) if algorithms is not None else list(range(NUM_GEMM_ALGORITHMS))
    for la, lb, lc, _shape in contraction_triples(op, env):
        for tc in tensor_core_modes:
            for algo in algos:
                yield OpConfig(
                    op_name=op.name,
                    input_layouts=(la, lb),
                    output_layouts=(lc,),
                    algorithm=algo,
                    use_tensor_cores=tc,
                )


def kernel_space(
    op: OpSpec, env: DimEnv
) -> tuple[list[list[Layout]], list[str | None], list[str | None]]:
    """The per-knob choice lists of a non-contraction kernel's config space.

    Returns ``(layout_choices, vec_choices, warp_choices)`` where
    ``layout_choices`` has one list per operand (inputs then outputs).
    Operands of rank <= 1 (biases, per-dim scales) have a single layout.
    """
    if op.op_class is OpClass.TENSOR_CONTRACTION:
        raise ValueError(f"use contraction_configs for {op.name!r}")
    operand_specs = list(op.inputs) + list(op.outputs)
    layout_choices: list[list[Layout]] = [
        list(all_layouts(t.dims)) if t.rank > 1 else [Layout(t.dims)]
        for t in operand_specs
    ]
    vec_choices: list[str | None] = list(op.ispace.all_dims) or [None]
    warp_choices: list[str | None] = (
        list(op.ispace.reduction) if op.ispace.reduction else [None]
    )
    return layout_choices, vec_choices, warp_choices


def kernel_config_indices(
    sizes: Sequence[int], *, cap: int | None, seed: int
) -> Iterator[tuple[int, ...]]:
    """Flat knob-index tuples of a kernel config space, in enumeration order.

    Exhaustive row-major enumeration when the product fits under ``cap``;
    otherwise a deterministic uniform subsample of exactly ``cap`` distinct
    tuples, always starting with the all-default point.  Both the scalar
    reference sweep and the batched engine consume this generator, so their
    config ordering — and hence their stable-sorted results — agree exactly.
    """
    total = 1
    for s in sizes:
        total *= s
    if cap is None or total <= cap:
        yield from itertools.product(*(range(s) for s in sizes))
        return
    rng = random.Random(seed)
    default = tuple([0] * len(sizes))
    yield default  # always include the default point
    seen = {default}
    while len(seen) < cap:
        flat = tuple(rng.randrange(s) for s in sizes)
        if flat in seen:
            continue
        seen.add(flat)
        yield flat


def kernel_configs(
    op: OpSpec,
    env: DimEnv,
    *,
    cap: int | None = 2000,
    seed: int = 0x5EED,
) -> Iterator[OpConfig]:
    """Layout/vector/warp configurations of a non-contraction kernel.

    Operands of rank <= 1 (biases, per-dim scales) have a single layout and
    are skipped in the product.  When the full product exceeds ``cap``,
    a deterministic uniform subsample of exactly ``cap`` configurations is
    produced (always including the all-default-layout point).
    """
    layout_choices, vec_choices, warp_choices = kernel_space(op, env)
    sizes = [len(c) for c in layout_choices] + [len(vec_choices), len(warp_choices)]
    n_in = len(op.inputs)

    def build(indices: Sequence[int]) -> OpConfig:
        layouts = [layout_choices[i][indices[i]] for i in range(len(layout_choices))]
        vec = vec_choices[indices[len(layout_choices)]]
        warp = warp_choices[indices[len(layout_choices) + 1]]
        return OpConfig(
            op_name=op.name,
            input_layouts=tuple(layouts[:n_in]),
            output_layouts=tuple(layouts[n_in:]),
            vector_dim=vec,
            warp_reduce_dim=warp,
        )

    for flat in kernel_config_indices(sizes, cap=cap, seed=seed):
        yield build(flat)


def op_configs(op: OpSpec, env: DimEnv, **kwargs) -> Iterator[OpConfig]:
    """Dispatch to the right enumerator for the operator's class."""
    if op.op_class is OpClass.TENSOR_CONTRACTION:
        return contraction_configs(op, env)
    return kernel_configs(op, env, **kwargs)


def default_config(op: OpSpec) -> OpConfig:
    """The untuned configuration: spec-order layouts, innermost-dim
    vectorization, first reduction dim for warp reduces, heuristic GEMM algo."""
    vec = op.ispace.all_dims[-1] if op.ispace.all_dims else None
    warp = op.ispace.reduction[0] if op.ispace.reduction else None
    return OpConfig(
        op_name=op.name,
        input_layouts=tuple(Layout(t.dims) for t in op.inputs),
        output_layouts=tuple(Layout(t.dims) for t in op.outputs),
        vector_dim=vec,
        warp_reduce_dim=warp,
    )
