"""The schedule artifact: canonical wire form and content digest.

A :class:`ScheduleEntry` records one answer to one tuning problem.  The
problem identity — what :func:`schedule_digest` hashes — is the canonical
tuple ``(graph signature, dim sizes, GPUSpec, selection knobs,
COST_MODEL_VERSION)``, mirroring the sweep store's
:func:`~repro.engine.store.sweep_digest` one level up: the sweep digest
addresses one operator's timed configuration space, the schedule digest
addresses one whole graph's selected configuration.  Unlike sweep digests,
schedule digests keep operator *names* and *stages*: a selection assigns
configurations to named operators, and the primary chain is a property of
the forward stage.

The entry's value side is everything a validator needs to re-derive the
claim from scratch:

* ``graph`` — the full dataflow graph in wire form (the service protocol's
  operator serialization plus the ``stage`` that selection reads);
* ``selection`` — per-op configurations with their exact
  compute/memory/launch/total splits *in assignment order* (the claimed
  total is an ordered float sum, and bit-exact recomputation must
  associate identically), inserted transposes, pinned layouts, the chain
  and the claimed totals;
* ``provenance`` — the L2 sweep digests the selection consumed, the
  registrar, package version and registration timestamp.

Serialization is canonical JSON (sorted keys, fixed separators) so the
entry's bytes — like every service response — are deterministic.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from repro.autotuner.tuner import ConfigMeasurement
from repro.hardware.cost_model import KernelTime
from repro.hardware.params import active_cost_model_version
from repro.hardware.spec import GPUSpec
from repro.ir.dims import DimEnv
from repro.ir.graph import DataflowGraph, GraphValidationError
from repro.ir.operator import Stage
from repro.layouts.config import NUM_GEMM_ALGORITHMS, HEURISTIC_ALGORITHM, OpConfig
from repro.layouts.layout import Layout
from repro.service.protocol import (
    ProtocolError,
    canonical_json_bytes,
    config_to_wire,
    gpu_to_wire,
    measurement_to_wire,
    op_from_wire,
    op_to_wire,
    tensor_from_wire,
    tensor_to_wire,
)

__all__ = [
    "REGISTRY_FORMAT",
    "ScheduleEntry",
    "config_from_wire",
    "graph_from_wire",
    "graph_to_wire",
    "measurement_from_wire",
    "schedule_digest",
    "selection_to_entry_wire",
]

#: Entry schema version; bump when the wire layout changes.
REGISTRY_FORMAT = 1

_STAGES = {s.value: s for s in Stage}


class EntryError(ValueError):
    """A malformed entry wire form (the registry wraps this in its error)."""


# ---------------------------------------------------------------------------
# Graph wire form: the protocol's op serialization + stage
# ---------------------------------------------------------------------------

def graph_to_wire(graph: DataflowGraph) -> dict:
    """Serialize a dataflow graph, including the stages selection reads.

    The service protocol's :func:`op_to_wire` deliberately drops ``stage``
    (the cost model never reads it), but schedule validation re-runs
    configuration selection, and the primary chain is extracted from the
    *forward* stage — so the registry's graph wire form carries it.
    """
    ops = []
    for op in graph.ops:
        wire = op_to_wire(op)
        wire["stage"] = op.stage.value
        ops.append(wire)
    return {
        "name": graph.name,
        "inputs": [tensor_to_wire(t) for t in graph.graph_inputs],
        "ops": ops,
    }


def graph_from_wire(wire: dict, where: str = "graph") -> DataflowGraph:
    """Rebuild a dataflow graph; raises :class:`EntryError` when malformed."""
    if not isinstance(wire, dict):
        raise EntryError(f"{where} must be a JSON object")
    try:
        graph = DataflowGraph(str(wire.get("name", "graph")))
        for i, t in enumerate(wire.get("inputs", ())):
            graph.add_input(tensor_from_wire(t, f"{where}.inputs[{i}]"))
        for i, w in enumerate(wire.get("ops", ())):
            op = op_from_wire(w, f"{where}.ops[{i}]")
            stage_value = w.get("stage", Stage.FORWARD.value)
            stage = _STAGES.get(stage_value)
            if stage is None:
                raise EntryError(
                    f"{where}.ops[{i}]: unknown stage {stage_value!r}; "
                    f"known: {sorted(_STAGES)}"
                )
            if stage is not op.stage:
                op = dataclasses.replace(op, stage=stage)
            graph.add_op(op)
        return graph
    except (ProtocolError, GraphValidationError) as exc:
        raise EntryError(f"{where}: {exc}") from exc


# ---------------------------------------------------------------------------
# Selection wire form
# ---------------------------------------------------------------------------

def _layout_from_wire(dims, where: str) -> Layout:
    if not isinstance(dims, (list, tuple)) or not all(
        isinstance(d, str) for d in dims
    ):
        raise EntryError(f"{where} must be a list of dim names")
    try:
        return Layout(tuple(dims))
    except ValueError as exc:
        raise EntryError(f"{where}: {exc}") from exc


def config_from_wire(wire: dict, where: str = "config") -> OpConfig:
    """Inverse of the protocol's :func:`config_to_wire`."""
    if not isinstance(wire, dict):
        raise EntryError(f"{where} must be a JSON object")
    algorithm = wire.get("algorithm", HEURISTIC_ALGORITHM)
    if not isinstance(algorithm, int) or isinstance(algorithm, bool) or not (
        algorithm == HEURISTIC_ALGORITHM or 0 <= algorithm < NUM_GEMM_ALGORITHMS
    ):
        raise EntryError(f"{where}.algorithm index {algorithm!r} out of range")
    try:
        return OpConfig(
            op_name=str(wire["op"]),
            input_layouts=tuple(
                _layout_from_wire(l, f"{where}.input_layouts[{i}]")
                for i, l in enumerate(wire["input_layouts"])
            ),
            output_layouts=tuple(
                _layout_from_wire(l, f"{where}.output_layouts[{i}]")
                for i, l in enumerate(wire["output_layouts"])
            ),
            vector_dim=wire.get("vector_dim"),
            warp_reduce_dim=wire.get("warp_reduce_dim"),
            algorithm=algorithm,
            use_tensor_cores=bool(wire.get("use_tensor_cores", True)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise EntryError(f"{where}: {exc}") from exc


def measurement_from_wire(wire: dict, where: str = "measurement") -> ConfigMeasurement:
    """Inverse of the protocol's :func:`measurement_to_wire`."""
    if not isinstance(wire, dict):
        raise EntryError(f"{where} must be a JSON object")
    try:
        return ConfigMeasurement(
            config=config_from_wire(wire["config"], f"{where}.config"),
            time=KernelTime(
                compute_us=float(wire["compute_us"]),
                memory_us=float(wire["memory_us"]),
                launch_us=float(wire["launch_us"]),
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise EntryError(f"{where}: {exc}") from exc


def selection_to_entry_wire(selection) -> dict:
    """The registry's wire form of a ``SelectedConfiguration``.

    Richer than the protocol's ``selection_to_wire``: assignment order is
    explicit (an ordered ``chosen`` *list*, because the claimed total is an
    ordered float sum) and the pinned per-tensor layouts are carried so the
    structural validator can audit them.
    """
    chosen = []
    for name, m in selection.chosen.items():
        wire = measurement_to_wire(m)
        wire["op"] = name
        chosen.append(wire)
    return {
        "chain": [s.op_name for s in selection.chain],
        "chain_cost_us": selection.chain_cost_us,
        "chosen": chosen,
        "transposes": [
            {
                "tensor": t.tensor,
                "from_layout": list(t.from_layout.dims),
                "to_layout": list(t.to_layout.dims),
                "time_us": t.time_us,
                "before_op": t.before_op,
            }
            for t in selection.transposes
        ],
        "pinned_layouts": {
            name: list(layout.dims)
            for name, layout in sorted(selection.pinned_layouts.items())
        },
        "transpose_us": selection.transpose_us,
        "total_us": selection.total_us,
    }


# ---------------------------------------------------------------------------
# The content digest: the identity of one tuning problem
# ---------------------------------------------------------------------------

def _signature_op(wire_op: dict) -> dict:
    """The digest-relevant view of one wire operator (drops nothing today;
    kept as a hook so cosmetic wire additions never split digests)."""
    return wire_op


def graph_signature(graph: DataflowGraph) -> dict:
    """Canonical JSON-able identity of a graph for schedule digests.

    Keeps names and stages (selection assigns configurations to named
    operators of specific stages) — deliberately *not* the sweep store's
    name-free structural sharing: two schedules for structurally identical
    but differently named graphs are different artifacts.
    """
    return {
        "name": graph.name,
        "inputs": [tensor_to_wire(t) for t in graph.graph_inputs],
        "ops": [_signature_op(w) for w in graph_to_wire(graph)["ops"]],
    }


def schedule_digest(
    graph: DataflowGraph,
    env: DimEnv,
    gpu: GPUSpec,
    *,
    cap: int | None,
    seed: int,
    source: str = "x",
    version: int | str | None = None,
) -> str:
    """Stable content digest of one schedule's tuning problem.

    Hashes ``(graph signature, dim sizes, GPUSpec, knobs, served
    cost-model version)`` — everything that determines the selection —
    so the digest is process- and session-independent (pinned by a
    spawned-interpreter test, like the sweep store's).  ``version``
    defaults (``None``) to the *served* cost-model version, resolved at
    call time so a calibration promotion changes every fresh digest;
    loaders pass an entry's *recorded* version so key verification still
    works on stale entries (staleness is a validator's report, not a load
    failure).
    """
    if version is None:
        version = active_cost_model_version()
    key = {
        "kind": "schedule",
        "format": REGISTRY_FORMAT,
        "version": version,
        "graph": graph_signature(graph),
        "env": sorted((d, env[d]) for d in _graph_dims(graph)),
        "gpu": gpu_to_wire(gpu),
        "knobs": {"cap": cap, "seed": seed, "source": source},
    }
    return hashlib.sha256(canonical_json_bytes(key)).hexdigest()


def _graph_dims(graph: DataflowGraph) -> set[str]:
    from repro.engine.store import _op_dims

    dims: set[str] = set()
    for op in graph.ops:
        dims.update(_op_dims(op))
    return dims


# ---------------------------------------------------------------------------
# The entry
# ---------------------------------------------------------------------------

_REQUIRED_FIELDS = (
    "digest",
    "registry_format",
    "cost_model_version",
    "graph",
    "env",
    "gpu",
    "knobs",
    "selection",
    "provenance",
)


@dataclass
class ScheduleEntry:
    """One registered schedule: problem, solution, and provenance."""

    digest: str
    cost_model_version: int | str  # int for defaults, "1-cal-…" tags for fitted
    graph: dict  # wire form (graph_to_wire)
    env: dict[str, int]
    gpu: dict  # wire form (gpu_to_wire)
    knobs: dict  # {"cap": int | None, "seed": int, "source": str}
    selection: dict  # wire form (selection_to_entry_wire)
    provenance: dict = field(default_factory=dict)
    registry_format: int = REGISTRY_FORMAT

    # -- identity ------------------------------------------------------------
    @property
    def total_us(self) -> float:
        return float(self.selection["total_us"])

    def build_graph(self) -> DataflowGraph:
        return graph_from_wire(self.graph)

    def recompute_digest(self, graph: DataflowGraph | None = None) -> str:
        """The digest this entry's own content implies (under its recorded
        cost-model version — staleness must not masquerade as tampering)."""
        graph = graph or self.build_graph()
        knobs = self.knobs
        return schedule_digest(
            graph,
            DimEnv({str(k): int(v) for k, v in self.env.items()}),
            _gpu_from_entry(self.gpu),
            cap=knobs.get("cap"),
            seed=int(knobs.get("seed", 0)),
            source=str(knobs.get("source", "x")),
            version=self.cost_model_version,
        )

    # -- serialization -------------------------------------------------------
    def to_wire(self) -> dict:
        return {
            "digest": self.digest,
            "registry_format": self.registry_format,
            "cost_model_version": self.cost_model_version,
            "graph": self.graph,
            "env": self.env,
            "gpu": self.gpu,
            "knobs": self.knobs,
            "selection": self.selection,
            "provenance": self.provenance,
        }

    def to_bytes(self) -> bytes:
        return canonical_json_bytes(self.to_wire())

    @classmethod
    def from_wire(cls, wire: dict, where: str = "entry") -> "ScheduleEntry":
        if not isinstance(wire, dict):
            raise EntryError(f"{where} must be a JSON object")
        missing = [k for k in _REQUIRED_FIELDS if k not in wire]
        if missing:
            raise EntryError(f"{where} is missing required fields {missing}")
        fmt = wire["registry_format"]
        if fmt != REGISTRY_FORMAT:
            raise EntryError(
                f"{where} uses registry format {fmt!r}, not {REGISTRY_FORMAT!r}"
            )
        sel = wire["selection"]
        if not isinstance(sel, dict) or "chosen" not in sel or "total_us" not in sel:
            raise EntryError(f"{where}.selection is missing chosen/total_us")
        version = wire["cost_model_version"]
        # int for default-params models, string tags ("1-cal-<digest12>")
        # for promoted calibration candidates — both are valid identities.
        if isinstance(version, bool) or not isinstance(version, (int, str)):
            raise EntryError(
                f"{where}.cost_model_version must be an integer or string tag"
            )
        try:
            return cls(
                digest=str(wire["digest"]),
                registry_format=int(fmt),
                cost_model_version=version,
                graph=wire["graph"],
                env={str(k): int(v) for k, v in dict(wire["env"]).items()},
                gpu=wire["gpu"],
                knobs=dict(wire["knobs"]),
                selection=sel,
                provenance=dict(wire["provenance"]),
            )
        except (TypeError, ValueError) as exc:
            raise EntryError(f"{where}: {exc}") from exc

    @classmethod
    def from_bytes(cls, raw: bytes, where: str = "entry") -> "ScheduleEntry":
        try:
            wire = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise EntryError(f"{where} is not valid JSON: {exc}") from exc
        return cls.from_wire(wire, where)

    # -- typed views of the selection ---------------------------------------
    def chosen_measurements(self) -> dict[str, ConfigMeasurement]:
        """Assignment-order ``{op name: measurement}`` (dict preserves it)."""
        out: dict[str, ConfigMeasurement] = {}
        for i, wire in enumerate(self.selection["chosen"]):
            name = str(wire.get("op", ""))
            if not name:
                raise EntryError(f"selection.chosen[{i}] has no op name")
            if name in out:
                raise EntryError(f"selection.chosen has duplicate op {name!r}")
            out[name] = measurement_from_wire(wire, f"selection.chosen[{i}]")
        return out


def _gpu_from_entry(wire: dict) -> GPUSpec:
    from repro.service.protocol import gpu_from_wire

    try:
        return gpu_from_wire(wire)
    except ProtocolError as exc:
        raise EntryError(f"entry.gpu: {exc}") from exc
