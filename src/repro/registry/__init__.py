"""Content-addressed schedule registry: tuned schedules as durable artifacts.

Configuration selection produces the repository's most expensive artifact —
a globally tuned schedule — and until now it was transient: an in-memory
:class:`~repro.configsel.selector.SelectedConfiguration` or a
``/v1/optimize`` response body that vanished with the process.  This
package persists selections the same way :mod:`repro.engine.store`
persists sweeps:

* :mod:`repro.registry.entry` — the :class:`ScheduleEntry` artifact and its
  canonical wire form: the tuning *problem* (graph signature, dim sizes,
  ``GPUSpec``, sampling knobs, ``COST_MODEL_VERSION``) plus its *solution*
  (per-op configurations with exact predicted time splits, inserted
  transposes, pinned layouts, the claimed end-to-end total) plus
  *provenance* (the L2 sweep digests selection consumed, timestamps,
  package version, registrar).
* :mod:`repro.registry.registry` — :class:`ScheduleRegistry`, a directory
  of ``<digest>.json`` entries addressed by :func:`schedule_digest` — a
  SHA-256 over the canonical problem tuple, so the digest identifies the
  tuning problem and the stored value is its audited answer.  Writes are
  write-tmp-rename atomic: a concurrent reader (the CLI's ``repro
  validate`` racing the daemon's ``/v1/register``) never observes a
  half-written entry.

Entries are validated, not trusted: :mod:`repro.validation` re-derives
everything an entry claims (structure, bit-exact costs, version freshness)
and turns drift into actionable reports.  The registry defaults to living
*alongside* the L2 sweep store (``<store>/registry``), giving the sharded
fleet and cost-model rollout work a shared, auditable artifact namespace.
"""

from .entry import (
    REGISTRY_FORMAT,
    ScheduleEntry,
    config_from_wire,
    graph_from_wire,
    graph_to_wire,
    measurement_from_wire,
    schedule_digest,
    selection_to_entry_wire,
)
from .registry import (
    REGISTRY_ENV_VAR,
    RegistryError,
    ScheduleRegistry,
    build_entry,
    get_schedule_registry,
    register_selection,
    set_schedule_registry,
)

__all__ = [
    "REGISTRY_ENV_VAR",
    "REGISTRY_FORMAT",
    "RegistryError",
    "ScheduleEntry",
    "ScheduleRegistry",
    "build_entry",
    "config_from_wire",
    "get_schedule_registry",
    "graph_from_wire",
    "graph_to_wire",
    "measurement_from_wire",
    "register_selection",
    "schedule_digest",
    "selection_to_entry_wire",
    "set_schedule_registry",
]
