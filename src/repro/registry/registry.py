"""The on-disk schedule registry: ``<digest>.json`` entries, atomically
written, strictly verified on load.

Mirrors the sweep store's contract one level up.  ``register`` writes the
canonical entry bytes to a temp file and ``os.replace``s it into place, so
a reader — a CLI ``repro validate`` racing the daemon's ``/v1/register``,
or the daemon's own background revalidation — either sees the previous
complete entry or the new complete entry, never a torn one.  ``load``
verifies three digests agree (the filename, the entry's recorded digest,
and the digest recomputed from the entry's own problem tuple) and raises
:class:`RegistryError` — a :class:`~repro.autotuner.cache.CacheMismatch`
— on any corruption, truncation or tampering; callers report and
re-register, never silently reuse.

The process-active registry resolves like the store's:
``REPRO_SCHEDULE_REGISTRY`` names a directory explicitly, and otherwise
the registry lives *alongside* the active L2 sweep store at
``<store>/registry`` — registered schedules and the sweeps they cite
travel together (the nightly CI caches both under one path).
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from pathlib import Path

from repro import __version__
from repro.autotuner.cache import CacheMismatch
from repro.engine.store import get_sweep_store, sweep_digest
from repro.hardware.cost_model import CostModel
from repro.hardware.params import active_cost_model_version
from repro.ir.dims import DimEnv
from repro.ir.graph import DataflowGraph
from repro.service.protocol import gpu_to_wire

from .entry import (
    EntryError,
    ScheduleEntry,
    graph_to_wire,
    schedule_digest,
    selection_to_entry_wire,
)

__all__ = [
    "REGISTRY_ENV_VAR",
    "RegistryError",
    "ScheduleRegistry",
    "build_entry",
    "get_schedule_registry",
    "register_selection",
    "set_schedule_registry",
]

#: Environment variable naming the registry directory (CLI: ``--registry``).
REGISTRY_ENV_VAR = "REPRO_SCHEDULE_REGISTRY"


class RegistryError(CacheMismatch):
    """A present-but-unusable registry entry (corrupt, truncated, tampered)."""


class ScheduleRegistry:
    """A directory of content-addressed schedule entries."""

    def __init__(self, root: str | Path) -> None:
        # expanduser: tilde paths arrive unexpanded from CI yaml env blocks.
        self.root = Path(root).expanduser()
        self._lock = threading.Lock()  # counters only: held briefly
        self.registered = 0
        self.loads = 0
        self.misses = 0
        self.rejected = 0

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def digests(self) -> list[str]:
        """Registered digests, sorted (in-flight ``.tmp`` files excluded)."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    # -- writing -------------------------------------------------------------
    def register(self, entry: ScheduleEntry) -> Path:
        """Atomically persist one entry under its digest.

        The write is temp-file + ``os.replace``: concurrent readers never
        observe a partial entry, and re-registering a digest atomically
        replaces the previous answer (same problem, refreshed provenance).
        """
        path = self.path_for(entry.digest)
        self.root.mkdir(parents=True, exist_ok=True)
        blob = entry.to_bytes()
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        with self._lock:
            self.registered += 1
        return path

    # -- reading -------------------------------------------------------------
    def load(self, digest: str) -> ScheduleEntry | None:
        """Deserialize and verify one entry.

        Returns ``None`` on a clean miss.  A present-but-unusable entry
        raises :class:`RegistryError`: corrupt/truncated JSON, missing
        fields, or any disagreement between the filename digest, the
        entry's recorded digest, and the digest recomputed from the entry's
        own problem tuple (under the entry's *recorded* cost-model version,
        so staleness surfaces as a validation report, not a load failure).
        """
        path = self.path_for(digest)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        where = f"registry entry {path}"
        try:
            entry = ScheduleEntry.from_bytes(raw, where)
            if entry.digest != digest:
                raise RegistryError(
                    f"{where} declares digest {entry.digest!r}, expected {digest!r}"
                )
            recomputed = entry.recompute_digest()
            if recomputed != digest:
                raise RegistryError(
                    f"{where} does not hash to its address: its problem tuple "
                    f"digests to {recomputed!r} (entry tampered or truncated; "
                    f"re-register it)"
                )
        except RegistryError:
            with self._lock:
                self.rejected += 1
            raise
        except EntryError as exc:
            with self._lock:
                self.rejected += 1
            raise RegistryError(f"{where}: {exc}") from exc
        with self._lock:
            self.loads += 1
        return entry

    def entries(self):
        """Yield ``(digest, entry_or_error)`` for every registered digest.

        The recovery-friendly iteration ``repro validate --all`` uses: a
        corrupt entry yields its :class:`RegistryError` instead of aborting
        the scan, so one bad file cannot hide the rest of the registry.
        """
        for digest in self.digests():
            try:
                entry = self.load(digest)
            except RegistryError as exc:
                yield digest, exc
                continue
            if entry is not None:  # raced deletion: skip cleanly
                yield digest, entry

    def stats(self) -> dict[str, int]:
        entries = (
            sum(1 for _ in self.root.glob("*.json")) if self.root.is_dir() else 0
        )
        with self._lock:
            return {
                "entries": entries,
                "registered": self.registered,
                "loads": self.loads,
                "misses": self.misses,
                "rejected": self.rejected,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScheduleRegistry({str(self.root)!r})"


# ---------------------------------------------------------------------------
# Building and registering entries from live selections
# ---------------------------------------------------------------------------

def build_entry(
    graph: DataflowGraph,
    env: DimEnv,
    cost: CostModel,
    selection,
    *,
    cap: int | None,
    seed: int = 0x5EED,
    source: str = "x",
    registrar: str = "api",
) -> ScheduleEntry:
    """Assemble the registry artifact for one completed selection.

    Provenance cites the L2 sweep digest of every configured operator —
    computed with the same knobs the selection swept under, so each cited
    digest is the exact ``.npz`` entry a warmed store served (or would
    have written).
    """
    gpu = cost.gpu
    digest = schedule_digest(graph, env, gpu, cap=cap, seed=seed, source=source)
    sweeps = {
        op.name: sweep_digest(op, env, gpu, cap=cap, seed=seed)
        for op in graph.ops
        if not op.is_view
    }
    return ScheduleEntry(
        digest=digest,
        cost_model_version=active_cost_model_version(),
        graph=graph_to_wire(graph),
        env={d: env[d] for d in sorted(_entry_dims(graph))},
        gpu=gpu_to_wire(gpu),
        knobs={"cap": cap, "seed": seed, "source": source},
        selection=selection_to_entry_wire(selection),
        provenance={
            "sweeps": sweeps,
            "registrar": registrar,
            "package_version": __version__,
            "registered_at": time.time(),
        },
    )


def _entry_dims(graph: DataflowGraph) -> set[str]:
    from .entry import _graph_dims

    return _graph_dims(graph)


def register_selection(
    registry: ScheduleRegistry,
    graph: DataflowGraph,
    env: DimEnv,
    cost: CostModel,
    selection,
    *,
    cap: int | None,
    seed: int = 0x5EED,
    source: str = "x",
    registrar: str = "api",
) -> ScheduleEntry:
    """Build and atomically persist the entry for one selection."""
    entry = build_entry(
        graph, env, cost, selection,
        cap=cap, seed=seed, source=source, registrar=registrar,
    )
    registry.register(entry)
    return entry


# ---------------------------------------------------------------------------
# The process-active registry
# ---------------------------------------------------------------------------

_UNSET = object()
_ACTIVE: ScheduleRegistry | None | object = _UNSET
#: One-slot memo of the store-derived default, keyed by the store root —
#: repeated get() calls must return the same instance (stable counters).
_DERIVED: tuple[Path, ScheduleRegistry] | None = None


def set_schedule_registry(
    registry: ScheduleRegistry | str | Path | None,
) -> ScheduleRegistry | None:
    """Install (or disable, with ``None``) the process-active registry."""
    global _ACTIVE
    if registry is not None and not isinstance(registry, ScheduleRegistry):
        registry = ScheduleRegistry(registry)
    _ACTIVE = registry
    return registry


def get_schedule_registry() -> ScheduleRegistry | None:
    """The active registry: explicit > ``REPRO_SCHEDULE_REGISTRY`` >
    alongside the active L2 sweep store (``<store>/registry``) > None."""
    global _ACTIVE, _DERIVED
    if _ACTIVE is _UNSET:
        path = os.environ.get(REGISTRY_ENV_VAR, "").strip()
        _ACTIVE = ScheduleRegistry(path) if path else None
    if _ACTIVE is not None:
        return _ACTIVE  # type: ignore[return-value]
    store = get_sweep_store()
    if store is None:
        return None
    root = store.root / "registry"
    if _DERIVED is None or _DERIVED[0] != root:
        _DERIVED = (root, ScheduleRegistry(root))
    return _DERIVED[1]
