#!/usr/bin/env python
"""Export the dataflow graphs as Graphviz DOT and JSON artifacts.

Produces renderable versions of the paper's Figs. 1b and 2: operator class
shown by node shape, memory-boundedness by border color, access volumes on
edges.  Render with ``dot -Tpdf mha.dot -o mha.pdf`` where graphviz is
available.

Run:  python examples/export_dataflow.py [output-dir]
"""

import sys
from pathlib import Path

from repro.fusion import apply_paper_fusion
from repro.ir import bert_large_dims, to_dot, to_json
from repro.transformer import build_encoder_graph, build_mha_graph


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("dataflow_exports")
    out_dir.mkdir(parents=True, exist_ok=True)
    env = bert_large_dims()

    artifacts = {
        "mha": build_mha_graph(qkv_fusion="unfused", include_backward=False),
        "encoder": build_encoder_graph(qkv_fusion="qkv"),
        "encoder_fused": apply_paper_fusion(
            build_encoder_graph(qkv_fusion="qkv"), env
        ),
    }
    for name, graph in artifacts.items():
        dot_path = out_dir / f"{name}.dot"
        json_path = out_dir / f"{name}.json"
        dot_path.write_text(to_dot(graph, env))
        json_path.write_text(to_json(graph, env))
        print(f"wrote {dot_path} ({len(graph)} ops) and {json_path}")

    print(f"\nrender with: dot -Tpdf {out_dir}/encoder_fused.dot -o encoder.pdf")


if __name__ == "__main__":
    main()
