#!/usr/bin/env python
"""Quickstart: run the paper's four-step recipe on a BERT encoder layer.

This walks the whole pipeline on the paper's running configuration
(BERT-large, batch 8, sequence length 512, simulated V100):

1. build the dataflow graph and look at its flop/IO profile;
2. fuse it into the paper's kernel set;
3. sweep configurations per operator;
4. select the global layout assignment and compare with PyTorch.

Run:  python examples/quickstart.py

``REPRO_SWEEP_CAP`` scales the per-operator sweep budget (the CI smoke
test runs every example with a tiny cap).
"""

import os

from repro import bert_large_dims, optimize_encoder
from repro.fusion import apply_paper_fusion
from repro.ir.analysis import class_flop_fractions
from repro.transformer import build_encoder_graph


def main() -> None:
    env = bert_large_dims()

    # Step 1: dataflow analysis.
    graph = build_encoder_graph(qkv_fusion="qkv")
    print(f"encoder dataflow graph: {len(graph)} operators")
    print(f"total required flop: {graph.total_flops(env) / 2**30:.1f} binary Gflop")
    for cls, frac in class_flop_fractions(graph, env).items():
        print(f"  {cls.marker} {cls.value:<28s} {100 * frac:6.2f}% of flop")

    # Step 2: fusion.
    fused = apply_paper_fusion(graph, env)
    before = graph.total_io_words(env) / 1e6
    after = fused.total_io_words(env) / 1e6
    print(f"\nfusion: {len(graph)} ops -> {len(fused)} kernels")
    print(f"data movement: {before:.0f} Mw -> {after:.0f} Mw "
          f"({100 * (before - after) / before:.1f}% reduction)")

    # Steps 3 + 4: tuning, global selection, and the PyTorch comparison.
    print("\nrunning configuration sweeps and global selection...")
    report = optimize_encoder(
        env, cap=int(os.environ.get("REPRO_SWEEP_CAP", "600"))
    )
    print(report.summary())
    print(f"  ours:    {report.forward_ms:.2f} ms fwd / {report.backward_ms:.2f} ms bwd")
    print(f"  pytorch: {report.pytorch_forward_ms:.2f} ms fwd / "
          f"{report.pytorch_backward_ms:.2f} ms bwd")


if __name__ == "__main__":
    main()
