#!/usr/bin/env python
"""Hardware what-if studies: beyond the paper's V100 evaluation.

Sec. VIII-B argues the data-movement analysis transfers to other hardware.
This example re-runs the end-to-end comparison on:

* the paper's V100;
* an A100 (higher peaks, more bandwidth — does the memory-bound share
  grow or shrink?);
* a hypothetical V100 with free kernel launches (isolating how much of the
  fusion win is launch overhead vs data movement).

Run:  python examples/whatif_hardware.py

``REPRO_SWEEP_CAP`` scales the per-operator sweep budget (the CI smoke
test runs every example with a tiny cap).
"""

import os
from dataclasses import replace

from repro.baselines import OURS, PYTORCH, framework_schedule
from repro.hardware import A100, CostModel, V100
from repro.ir.dims import bert_large_dims


def run(label: str, gpu) -> None:
    env = bert_large_dims()
    cost = CostModel(gpu)
    cap = int(os.environ.get("REPRO_SWEEP_CAP", "300"))
    ours = framework_schedule(OURS, env, cost, model="encoder", cap=cap)
    pt = framework_schedule(PYTORCH, env, cost, model="encoder", cap=cap)
    speedup = pt.total_us / ours.total_us
    print(
        f"{label:<24s} ours {ours.total_us / 1000:6.2f} ms   "
        f"pytorch {pt.total_us / 1000:6.2f} ms   speedup {speedup:4.2f}x"
    )


def main() -> None:
    print("encoder layer fwd+bwd, per device:\n")
    run("V100 (paper)", V100)
    run("A100", A100)
    run("V100, free launches", replace(V100, kernel_launch_us=0.0))
    zero_bw_gap = replace(V100, mem_bandwidth=V100.mem_bandwidth * 2)
    run("V100, 2x bandwidth", zero_bw_gap)

    print(
        "\nReading the results: the fusion+layout speedup persists with free"
        "\nlaunches (it is a data-movement win, not a launch-count win), and"
        "\nfaster compute (A100) makes training *more* memory bound, not less"
        "\n— exactly the paper's Sec. VIII trend argument."
    )


if __name__ == "__main__":
    main()
