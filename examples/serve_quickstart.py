#!/usr/bin/env python
"""Tuning as a service: run the layout-recommendation daemon and query it.

The sweeps and tuned schedules this repo computes are reusable artifacts;
the daemon (:mod:`repro.service`) serves them to many concurrent callers
with single-flight coalescing over a shared content-addressed store.  This
example starts a daemon in-process (the same server ``python -m repro
serve`` runs), then:

1. checks ``/healthz`` (package + cost-model version);
2. asks ``/v1/sweep`` for the best layouts of one attention GEMM;
3. fires eight *concurrent* identical requests and reads ``/metrics`` to
   show they coalesced into a single evaluation;
4. asks ``/v1/optimize`` for a whole-encoder tuned schedule.

Run:  python examples/serve_quickstart.py

``REPRO_SWEEP_CAP`` scales the per-operator sweep budget (the CI smoke
test runs every example with a tiny cap).
"""

import os
from concurrent.futures import ThreadPoolExecutor

from repro.ir.dims import bert_large_dims
from repro.service import TuningClient, TuningService
from repro.service.server import serve_background
from repro.transformer import build_mha_graph

CAP = int(os.environ.get("REPRO_SWEEP_CAP", "400"))


def main() -> None:
    env = bert_large_dims()
    op = build_mha_graph(qkv_fusion="unfused", include_backward=False).op("q_proj")

    service = TuningService(store=None)
    with serve_background(service) as url:
        client = TuningClient(url)

        health = client.healthz()
        print(f"daemon up at {url}: repro {health['version']}, "
              f"cost model v{health['cost_model_version']}")

        print(f"\n/v1/sweep for {op.name} (cap={CAP}):")
        resp = client.sweep(op, env, cap=CAP)
        for rank, m in enumerate(resp["top"], 1):
            layouts = ", ".join("".join(l) for l in m["config"]["input_layouts"])
            print(f"  #{rank}: {m['total_us']:7.2f} us  inputs [{layouts}]  "
                  f"algo {m['config']['algorithm']}")

        print("\n8 concurrent identical requests:")
        with ThreadPoolExecutor(8) as pool:
            bodies = set(pool.map(
                lambda _: client.sweep_raw(op, env, cap=CAP), range(8)
            ))
        tiers = client.metrics()["resolve_tiers"]
        print(f"  {len(bodies)} distinct response body(ies); resolve tiers: {tiers}")
        print("  -> one cold evaluation; everything else was coalesced or cached")

        print(f"\n/v1/optimize (whole encoder, cap={CAP}):")
        schedule = client.optimize(model="encoder", env=env, cap=CAP)
        print(f"  {schedule['num_kernels']} kernels, "
              f"{schedule['total_us'] / 1000:.2f} ms fwd+bwd; slowest three:")
        slowest = sorted(
            schedule["kernels"], key=lambda k: -k["best"]["total_us"]
        )[:3]
        for k in slowest:
            print(f"    {k['op']:<20s} {k['best']['total_us']:8.1f} us")

    print("\ndaemon shut down cleanly; the same server runs standalone via:")
    print("  python -m repro serve --sweep-store ~/.cache/repro-sweeps")
    print("  python -m repro query --model encoder")


if __name__ == "__main__":
    main()
