#!/usr/bin/env python
"""Multi-head attention analysis: Fig. 1b dataflow and Table IV comparison.

MHA is useful far beyond transformers (Sec. VI-B), so the paper analyzes it
standalone.  This example prints the annotated dataflow graph (which
operators are memory bound?), the algebraic-fusion ablation (Table II), and
the framework comparison (Table IV) including the cuDNN softmax-storm
pathology.

Run:  python examples/mha_analysis.py

``REPRO_SWEEP_CAP`` scales the per-operator sweep budget (the CI smoke
test runs every example with a tiny cap).
"""

import os

from repro.analysis.figures import fig1_mha_dataflow
from repro.analysis.report import format_framework_table, format_table2
from repro.analysis.tables import table2, table4
from repro.ir.dims import bert_large_dims


def main() -> None:
    env = bert_large_dims()

    print("=== Fig. 1b: MHA forward dataflow (flop vs data movement) ===")
    for r in fig1_mha_dataflow(env):
        bar = "#" * max(1, min(40, int(r.flop_per_word / 25)))
        print(
            f"  {r.op_class.marker} {r.op_name:<16s} {r.gflop:7.3f} Gflop  "
            f"{r.flop_per_word:8.1f} flop/word  [{r.movement_class:<10s}] {bar}"
        )
    print("\nEvery operator below ~1 flop/word is pure data movement: its")
    print("runtime is decided by bytes, not arithmetic.\n")

    print("=== Table II: algebraic fusion of the Q/K/V projections (us) ===")
    print(format_table2(table2(env)))
    print("\nStacking [W_Q W_K W_V] reads X once and fills the GPU with one")
    print("wide GEMM instead of three narrow ones.\n")

    print("=== Table IV: MHA forward/backward per framework (ms) ===")
    data = table4(env, cap=int(os.environ.get("REPRO_SWEEP_CAP", "300")))
    print(format_framework_table(data))
    cudnn_ratio = data["cuDNN"]["forward_ms"] / data["Ours"]["forward_ms"]
    print(f"\ncuDNN's experimental MHA is {cudnn_ratio:,.0f}x slower: its")
    print("implementation launches one softmax kernel per attention row.")


if __name__ == "__main__":
    main()
