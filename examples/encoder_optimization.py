#!/usr/bin/env python
"""Step-by-step walkthrough of the recipe with intermediate artifacts.

Where ``quickstart.py`` runs the pipeline, this example *shows* it: the
per-step artifacts a performance engineer would inspect — the annotated
graph, the fusion worklist, a sweep distribution, the configuration graph,
and the final kernel-by-kernel schedule.

Run:  python examples/encoder_optimization.py

``REPRO_SWEEP_CAP`` scales the per-operator sweep budget (the CI smoke
test runs every example with a tiny cap).
"""

import os

from repro.autotuner import sweep_graph
from repro.configsel import primary_chain, select_configurations
from repro.fusion import apply_paper_fusion
from repro.hardware import CostModel, op_mue
from repro.ir.analysis import annotate
from repro.ir.dims import bert_large_dims
from repro.transformer import build_encoder_graph


def main() -> None:
    env = bert_large_dims()
    cost = CostModel()
    cap = int(os.environ.get("REPRO_SWEEP_CAP", "400"))

    print("STEP 1 — dataflow analysis")
    graph = build_encoder_graph(qkv_fusion="qkv")
    memory_bound = [
        a for a in annotate(graph, env)
        if a.movement_class == "IO > flop" and not a.op.is_view
    ]
    print(f"  {len(memory_bound)} of {len(graph)} operators move more words "
          f"than they compute flop — fusion targets:")
    for a in memory_bound[:8]:
        print(f"    {a.op.op_class.marker} {a.name}")
    print("    ...")

    print("\nSTEP 2 — fusion")
    fused = apply_paper_fusion(graph, env)
    for op in fused.ops:
        if op.is_fused:
            print(f"  {op.kernel_label:<8s} <- {' + '.join(op.fused_from)}")

    print("\nSTEP 3 — configuration sweeps")
    sweeps = sweep_graph(fused, env, cost, cap=cap)
    sm = sweeps["SM"]
    print(f"  SM: {sm.num_configs} configs, best {sm.best.total_us:.0f} us, "
          f"worst {sm.worst.total_us:.0f} us ({sm.spread:.0f}x spread)")

    print("\nSTEP 4 — global selection (SSSP over the configuration graph)")
    chain = primary_chain(fused)
    print("  forward chain:", " -> ".join(s.op_name for s in chain))
    sel = select_configurations(fused, env, cost, sweeps=sweeps, cap=cap)
    print(f"  selected total: {sel.total_us / 1000:.2f} ms "
          f"({len(sel.transposes)} transposes, {sel.transpose_us:.0f} us)")

    print("\nFinal schedule (kernel, time, MUE):")
    for op in fused.ops:
        if op.is_view:
            continue
        t = sel.op_time_us(op.name)
        m = op_mue(op, t, env, cost.gpu)
        label = op.kernel_label or op.name
        print(f"  {label:<16s} {t:8.1f} us   MUE {m:5.1f}")


if __name__ == "__main__":
    main()
