#!/usr/bin/env python
"""Layout-space exploration: reproduce the violin plots of Figs. 4 and 5.

For a handful of operators this sweeps every feasible configuration and
renders the runtime distribution as text histograms, illustrating the
paper's two key observations:

* contraction performance has a few distinct modes (layout families), and
  the majority of the config-space mass performs poorly;
* fused memory-bound kernels have *extremely* long tails — a bad layout is
  orders of magnitude slower, so exhaustive search beats intuition.

Run:  python examples/layout_tuning.py

``REPRO_SWEEP_CAP`` scales the per-operator sweep budget (the CI smoke
test runs every example with a tiny cap).
"""

import os

from repro.autotuner import render_ascii, summarize, sweep_op
from repro.fusion import apply_paper_fusion
from repro.hardware import CostModel
from repro.ir.dims import bert_large_dims
from repro.transformer import build_encoder_graph


def main() -> None:
    env = bert_large_dims()
    cost = CostModel()
    graph = apply_paper_fusion(build_encoder_graph(qkv_fusion="qkv"), env)

    env_cap = os.environ.get("REPRO_SWEEP_CAP")

    print("=== Contractions (Fig. 4 style) ===")
    for name in ("qkv_proj", "qkt", "linear1"):
        sweep = sweep_op(
            graph.op(name), env, cost, cap=int(env_cap) if env_cap else 2000
        )
        s = summarize(sweep)
        print(render_ascii(s))
        print()

    print("=== Fused kernels (Fig. 5 style) ===")
    for name in ("AIB", "SM", "BRD"):
        sweep = sweep_op(
            graph.op(name), env, cost, cap=int(env_cap) if env_cap else 1200
        )
        s = summarize(sweep)
        print(render_ascii(s))
        print(f"  -> best config: vec={sweep.best.config.vector_dim}, "
              f"layouts={[str(l) for l in sweep.best.config.input_layouts]}")
        print()

    print("The long tails are why Step 3 of the recipe is exhaustive search:")
    print("an 'intuitively good' configuration can still be 10x off "
          "(Sec. V-B's AIB example).")


if __name__ == "__main__":
    main()
