#!/usr/bin/env python
"""Train an encoder layer end to end with the exact kernels the paper tunes.

The performance analysis is only credible if the same forward/backward
computation actually learns.  This example trains one (small) BERT encoder
layer on a synthetic sequence-denoising task using the NumPy kernels, then
verifies that the optimized (fused) execution schedule computes bit-identical
outputs to the unfused one on the trained weights.

Run:  python examples/bert_training.py
"""

import numpy as np

from repro.fusion import apply_paper_fusion
from repro.runtime import GraphExecutor, encoder_feeds
from repro.transformer import (
    ModelDims,
    build_encoder_graph,
    train_denoising,
)


def main() -> None:
    dims = ModelDims(batch=4, seq=16, heads=4, proj=8, ffn_mult=2)
    print(f"training a {dims.embed}-dim, {dims.heads}-head encoder layer "
          f"on sequence denoising...")

    result = train_denoising(dims, steps=60, lr=3e-3, seed=0)
    first, last = result.losses[0], result.losses[-1]
    print(f"loss: {first:.4f} -> {last:.4f} "
          f"({100 * (first - last) / first:.1f}% reduction over 60 steps)")
    assert result.improved, "training must reduce the loss"

    # The trained weights run identically under the fused schedule.
    env = dims.env()
    rng = np.random.default_rng(123)
    x = rng.normal(0, 1, (dims.embed, dims.batch, dims.seq))
    graph = build_encoder_graph(qkv_fusion="qkv", include_backward=False)
    fused = apply_paper_fusion(graph, env)
    feeds = encoder_feeds(result.params, x, qkv_fusion="qkv")
    y_unfused = GraphExecutor(graph, env).run(feeds)["y"]
    y_fused = GraphExecutor(fused, env).run(feeds)["y"]
    assert np.array_equal(y_unfused, y_fused)
    print("fused schedule reproduces the trained model's output exactly; "
          "fusion changed data movement, not math.")


if __name__ == "__main__":
    main()
